//! Candidate model sets (DNN families) fed to schedulers.
//!
//! Paper Table 3 defines the evaluation candidates:
//!
//! * image classification — a *Sparse ResNet* traditional family plus a
//!   *Depth-Nest* anytime network,
//! * sentence prediction — an RNN width family plus a *Width-Nest* anytime
//!   network,
//!
//! and three scheduler variants that receive the traditional models only
//! (`ALERT-Trad`), the anytime network only (`ALERT-Any`), or both
//! (`ALERT`). Anytime networks trade a little final accuracy for their
//! flexibility (§3.5), which the profiles below encode: each anytime
//! staircase sits slightly below the traditional model of equal latency.

use crate::profile::{AnytimeSpec, AnytimeStage, ModelProfile, QualityMetric};
use crate::zoo::{imagenet42, IMAGENET_RANDOM_GUESS, PTB_FAIL_PERPLEXITY};
use alert_platform::platform::WorkloadClass;
use serde::{Deserialize, Serialize};

/// Which subset of a task's candidates a scheduler receives (Table 3/5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CandidateSet {
    /// Traditional models and the anytime network (the "Standard" set).
    Standard,
    /// The anytime network only.
    AnytimeOnly,
    /// Traditional models only.
    TraditionalOnly,
}

/// A named, validated set of candidate models.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFamily {
    name: String,
    models: Vec<ModelProfile>,
}

impl ModelFamily {
    /// Builds a family, validating every member.
    ///
    /// # Panics
    ///
    /// Panics if the family is empty or a member profile is invalid —
    /// these are construction-time programming errors, not runtime
    /// conditions.
    pub fn new(name: impl Into<String>, models: Vec<ModelProfile>) -> Self {
        let name = name.into();
        assert!(!models.is_empty(), "family {name} has no models");
        for m in &models {
            if let Err(e) = m.validate() {
                // lint:allow(no-panic): documented panic contract — invalid members are construction-time programming errors
                panic!("family {name}: model {} invalid: {e}", m.name);
            }
        }
        ModelFamily { name, models }
    }

    /// Family name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The member profiles.
    pub fn models(&self) -> &[ModelProfile] {
        &self.models
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// `true` if there are no members (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The member with the lowest reference latency.
    pub fn fastest(&self) -> &ModelProfile {
        self.models
            .iter()
            .min_by(|a, b| a.ref_latency_s.total_cmp(&b.ref_latency_s))
            // lint:allow(no-panic): new() asserts families are non-empty
            .expect("non-empty family")
    }

    /// The member with the highest final quality.
    pub fn most_accurate(&self) -> &ModelProfile {
        self.models
            .iter()
            .max_by(|a, b| a.quality.total_cmp(&b.quality))
            // lint:allow(no-panic): new() asserts families are non-empty
            .expect("non-empty family")
    }

    /// The anytime members.
    pub fn anytime_members(&self) -> impl Iterator<Item = &ModelProfile> {
        self.models.iter().filter(|m| m.is_anytime())
    }

    /// Members that fit in `capacity_gb` of memory.
    pub fn fitting(&self, capacity_gb: f64) -> Vec<&ModelProfile> {
        self.models
            .iter()
            .filter(|m| m.footprint_gb <= capacity_gb)
            .collect()
    }

    /// Restricts the family to a [`CandidateSet`].
    pub fn restrict(&self, set: CandidateSet) -> ModelFamily {
        let models: Vec<ModelProfile> = match set {
            CandidateSet::Standard => self.models.clone(),
            CandidateSet::AnytimeOnly => self
                .models
                .iter()
                .filter(|m| m.is_anytime())
                .cloned()
                .collect(),
            CandidateSet::TraditionalOnly => self
                .models
                .iter()
                .filter(|m| !m.is_anytime())
                .cloned()
                .collect(),
        };
        ModelFamily::new(format!("{}/{:?}", self.name, set), models)
    }
}

/// The Sparse ResNet traditional family (image classification, Table 3).
pub fn sparse_resnet_family() -> Vec<ModelProfile> {
    let mk = |name: &str, lat_ms: f64, acc: f64, gb: f64| ModelProfile {
        name: name.to_string(),
        class: WorkloadClass::Cnn,
        metric: QualityMetric::Top5Accuracy,
        ref_latency_s: lat_ms / 1e3,
        quality: acc,
        fail_quality: IMAGENET_RANDOM_GUESS,
        rho: 0.84,
        mem_intensity: 0.50,
        footprint_gb: gb,
        anytime: None,
    };
    vec![
        mk("sparse_resnet_8", 20.0, 0.855, 0.15),
        mk("sparse_resnet_14", 35.0, 0.885, 0.22),
        mk("sparse_resnet_26", 60.0, 0.912, 0.34),
        mk("sparse_resnet_50", 105.0, 0.935, 0.55),
        mk("sparse_resnet_101", 170.0, 0.951, 0.90),
    ]
}

/// The Depth-Nest anytime network (image classification, Table 3; nested
/// design of paper reference [5]).
///
/// Its staircase sits just below the traditional model of equal latency —
/// e.g. the 0.62-fraction output (~108 ms) scores 0.932 vs Sparse
/// ResNet-50's 0.935 at 105 ms.
pub fn depth_nest() -> ModelProfile {
    ModelProfile {
        name: "depth_nest_anytime".to_string(),
        class: WorkloadClass::Cnn,
        metric: QualityMetric::Top5Accuracy,
        ref_latency_s: 0.175,
        quality: 0.948,
        fail_quality: IMAGENET_RANDOM_GUESS,
        rho: 0.84,
        mem_intensity: 0.52,
        footprint_gb: 0.95,
        anytime: Some(AnytimeSpec::new(vec![
            AnytimeStage {
                frac: 0.18,
                quality: 0.858,
            },
            AnytimeStage {
                frac: 0.35,
                quality: 0.904,
            },
            AnytimeStage {
                frac: 0.62,
                quality: 0.932,
            },
            AnytimeStage {
                frac: 1.00,
                quality: 0.948,
            },
        ])),
    }
}

/// The RNN width family (sentence prediction, Table 3). Latencies are per
/// word; quality is negative perplexity.
pub fn rnn_family() -> Vec<ModelProfile> {
    let mk = |name: &str, lat_ms: f64, ppl: f64, gb: f64| ModelProfile {
        name: name.to_string(),
        class: WorkloadClass::Rnn,
        metric: QualityMetric::Perplexity,
        ref_latency_s: lat_ms / 1e3,
        quality: -ppl,
        fail_quality: -PTB_FAIL_PERPLEXITY,
        rho: 0.55,
        mem_intensity: 0.70,
        footprint_gb: gb,
        anytime: None,
    };
    vec![
        mk("rnn_w128", 6.0, 160.0, 0.08),
        mk("rnn_w256", 10.0, 142.0, 0.12),
        mk("rnn_w512", 18.0, 128.0, 0.18),
        mk("rnn_w768", 28.0, 121.0, 0.26),
        mk("rnn_w1024", 40.0, 115.0, 0.35),
    ]
}

/// The Width-Nest anytime RNN (sentence prediction, Table 3).
///
/// Each stage sits ~2–3 perplexity points above (worse than) the
/// traditional RNN of equal latency — the §3.5 flexibility tax — with a
/// staircase fine enough that the anytime-only controller stays
/// competitive (paper Table 5 shows ALERT-Any ≈ ALERT).
pub fn width_nest() -> ModelProfile {
    ModelProfile {
        name: "width_nest_anytime".to_string(),
        class: WorkloadClass::Rnn,
        metric: QualityMetric::Perplexity,
        ref_latency_s: 0.042,
        quality: -117.0,
        fail_quality: -PTB_FAIL_PERPLEXITY,
        rho: 0.55,
        mem_intensity: 0.72,
        footprint_gb: 0.38,
        anytime: Some(AnytimeSpec::new(vec![
            AnytimeStage {
                frac: 0.15,
                quality: -163.0,
            },
            AnytimeStage {
                frac: 0.25,
                quality: -146.0,
            },
            AnytimeStage {
                frac: 0.45,
                quality: -131.0,
            },
            AnytimeStage {
                frac: 0.67,
                quality: -124.0,
            },
            AnytimeStage {
                frac: 1.00,
                quality: -117.0,
            },
        ])),
    }
}

impl ModelFamily {
    /// Image classification candidates: Sparse ResNet family + Depth-Nest
    /// anytime (the "Standard" set of Tables 3–5).
    pub fn image_classification() -> ModelFamily {
        let mut models = sparse_resnet_family();
        models.push(depth_nest());
        ModelFamily::new("image_classification", models)
    }

    /// Sentence prediction candidates: RNN widths + Width-Nest anytime.
    pub fn sentence_prediction() -> ModelFamily {
        let mut models = rnn_family();
        models.push(width_nest());
        ModelFamily::new("sentence_prediction", models)
    }

    /// The 42-network ImageNet zoo as a family (Figs. 2, 6).
    pub fn imagenet_zoo() -> ModelFamily {
        ModelFamily::new("imagenet42", imagenet42())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn families_are_valid() {
        for f in [
            ModelFamily::image_classification(),
            ModelFamily::sentence_prediction(),
            ModelFamily::imagenet_zoo(),
        ] {
            assert!(!f.is_empty());
            for m in f.models() {
                assert!(m.validate().is_ok(), "{}: {:?}", m.name, m.validate());
            }
        }
    }

    #[test]
    fn image_family_composition() {
        let f = ModelFamily::image_classification();
        assert_eq!(f.len(), 6);
        assert_eq!(f.anytime_members().count(), 1);
        assert_eq!(f.fastest().name, "sparse_resnet_8");
        assert_eq!(f.most_accurate().name, "sparse_resnet_101");
    }

    #[test]
    fn restrict_splits_candidates() {
        let f = ModelFamily::image_classification();
        assert_eq!(f.restrict(CandidateSet::TraditionalOnly).len(), 5);
        assert_eq!(f.restrict(CandidateSet::AnytimeOnly).len(), 1);
        assert_eq!(f.restrict(CandidateSet::Standard).len(), 6);
    }

    #[test]
    fn anytime_sacrifices_final_accuracy() {
        // Paper §3.5: anytime DNNs have slightly lower accuracy than a
        // traditional DNN of similar compute.
        let img = ModelFamily::image_classification();
        let trad_best = img
            .restrict(CandidateSet::TraditionalOnly)
            .most_accurate()
            .quality;
        let any_best = depth_nest().quality;
        assert!(any_best < trad_best);
        let nlp_trad = -115.0; // rnn_w1024 perplexity 115
        assert!(width_nest().quality < nlp_trad);
    }

    #[test]
    fn anytime_staircase_beats_fallback_early() {
        let d = depth_nest();
        // Even the first output is far better than a random guess.
        assert!(d.quality_at_fraction(0.2) > 0.8);
        assert!(d.quality_at_fraction(0.1) < 0.01);
    }

    #[test]
    fn rnn_family_quality_monotone_in_latency() {
        let f = rnn_family();
        for w in f.windows(2) {
            assert!(w[1].ref_latency_s > w[0].ref_latency_s);
            assert!(w[1].quality > w[0].quality);
        }
    }

    #[test]
    fn fitting_respects_capacity() {
        let f = ModelFamily::image_classification();
        let small = f.fitting(0.3);
        assert!(small.len() < f.len());
        assert!(small.iter().all(|m| m.footprint_gb <= 0.3));
    }

    #[test]
    #[should_panic(expected = "has no models")]
    fn empty_family_rejected() {
        let _ = ModelFamily::new("empty", vec![]);
    }
}
