//! The model zoo.
//!
//! Paper Fig. 2 profiles "all 42 image classification models provided by
//! the TensorFlow website" on ImageNet. We reproduce that population with
//! the TF-slim model names and latency/error/footprint figures shaped to
//! the paper's reported spans: the fastest model is ~18× faster than the
//! slowest, the most accurate has ~7.8× lower top-5 error than the least,
//! and per-inference energy spans >20× (§2.1). The hull structure — VGG
//! far off the optimal frontier, NASNet/PNASNet anchoring the accurate
//! end, MobileNets the fast end — follows the real measurements.
//!
//! Reference latencies are at the profiling condition: CPU2 (Xeon) at the
//! maximum power cap. Quality scores are top-5 *accuracy* in [0, 1].

use crate::profile::{ModelProfile, QualityMetric};
use alert_platform::platform::WorkloadClass;

/// Top-5 quality of a random guess over the 1000 ImageNet classes.
pub const IMAGENET_RANDOM_GUESS: f64 = 0.005;

/// Perplexity assigned to a missed-deadline prediction on PTB (no output:
/// effectively a uniform guess over a 10k vocabulary, truncated for
/// reporting sanity).
pub const PTB_FAIL_PERPLEXITY: f64 = 1000.0;

/// Builds one CNN profile (helper for the zoo table).
fn cnn(name: &str, lat_ms: f64, err5_pct: f64, rho: f64, mem: f64, gb: f64) -> ModelProfile {
    ModelProfile {
        name: name.to_string(),
        class: WorkloadClass::Cnn,
        metric: QualityMetric::Top5Accuracy,
        ref_latency_s: lat_ms / 1e3,
        quality: 1.0 - err5_pct / 100.0,
        fail_quality: IMAGENET_RANDOM_GUESS,
        rho,
        mem_intensity: mem,
        footprint_gb: gb,
        anytime: None,
    }
}

/// The 42 ImageNet classification networks (Fig. 2 population).
///
/// # Examples
///
/// ```
/// let zoo = alert_models::zoo::imagenet42();
/// assert_eq!(zoo.len(), 42);
/// for m in &zoo {
///     assert!(m.validate().is_ok(), "{} invalid", m.name);
/// }
/// ```
pub fn imagenet42() -> Vec<ModelProfile> {
    vec![
        // MobileNet v1 grid: depth multiplier × input resolution.
        cnn("mobilenet_v1_025_128", 15.0, 27.4, 0.70, 0.75, 0.06),
        cnn("mobilenet_v1_025_160", 17.0, 25.9, 0.70, 0.75, 0.07),
        cnn("mobilenet_v1_025_192", 19.0, 24.6, 0.70, 0.74, 0.07),
        cnn("mobilenet_v1_025_224", 22.0, 23.0, 0.70, 0.74, 0.08),
        cnn("mobilenet_v1_050_128", 18.0, 20.9, 0.71, 0.72, 0.09),
        cnn("mobilenet_v1_050_160", 21.0, 18.9, 0.71, 0.72, 0.10),
        cnn("mobilenet_v1_050_192", 24.0, 17.4, 0.71, 0.71, 0.10),
        cnn("mobilenet_v1_050_224", 28.0, 16.2, 0.71, 0.71, 0.11),
        cnn("mobilenet_v1_075_128", 22.0, 17.8, 0.72, 0.70, 0.12),
        cnn("mobilenet_v1_075_160", 26.0, 16.0, 0.72, 0.70, 0.13),
        cnn("mobilenet_v1_075_192", 30.0, 14.8, 0.72, 0.69, 0.13),
        cnn("mobilenet_v1_075_224", 35.0, 13.7, 0.72, 0.69, 0.14),
        cnn("mobilenet_v1_100_128", 26.0, 15.5, 0.73, 0.68, 0.16),
        cnn("mobilenet_v1_100_160", 31.0, 13.8, 0.73, 0.68, 0.17),
        cnn("mobilenet_v1_100_192", 37.0, 12.5, 0.73, 0.67, 0.17),
        cnn("mobilenet_v1_100_224", 43.0, 11.5, 0.73, 0.67, 0.18),
        cnn("mobilenet_v2_100_224", 46.0, 10.1, 0.72, 0.68, 0.16),
        cnn("mobilenet_v2_140_224", 58.0, 9.0, 0.73, 0.67, 0.24),
        // Small classics.
        cnn("squeezenet_v11", 24.0, 19.7, 0.75, 0.62, 0.05),
        cnn("alexnet_v2", 33.0, 18.3, 0.80, 0.55, 0.25),
        // Inception line.
        cnn("inception_v1", 50.0, 10.9, 0.82, 0.52, 0.28),
        cnn("inception_v2", 62.0, 9.4, 0.82, 0.52, 0.35),
        cnn("inception_v3", 105.0, 6.3, 0.83, 0.50, 0.45),
        cnn("inception_v4", 165.0, 5.0, 0.84, 0.49, 0.60),
        cnn("inception_resnet_v2", 180.0, 4.9, 0.84, 0.50, 0.65),
        // ResNets.
        cnn("resnet_v1_50", 92.0, 7.4, 0.85, 0.48, 0.80),
        cnn("resnet_v1_101", 150.0, 6.2, 0.85, 0.47, 1.10),
        cnn("resnet_v1_152", 205.0, 5.8, 0.85, 0.47, 1.35),
        cnn("resnet_v2_50", 96.0, 7.0, 0.85, 0.48, 0.80),
        cnn("resnet_v2_101", 158.0, 5.9, 0.85, 0.47, 1.10),
        cnn("resnet_v2_152", 215.0, 5.5, 0.85, 0.47, 1.35),
        cnn("resnet_v2_200", 255.0, 5.2, 0.85, 0.46, 1.60),
        // DenseNets.
        cnn("densenet_121", 98.0, 7.7, 0.78, 0.58, 0.55),
        cnn("densenet_169", 125.0, 7.0, 0.78, 0.58, 0.70),
        cnn("densenet_201", 152.0, 6.4, 0.78, 0.57, 0.85),
        // VGG: famously far above the optimal frontier.
        cnn("vgg_16", 240.0, 9.9, 0.92, 0.40, 1.60),
        cnn("vgg_19", 270.0, 9.5, 0.92, 0.40, 1.70),
        // Architecture-search models anchor the accurate end.
        cnn("nasnet_mobile", 65.0, 8.1, 0.79, 0.56, 0.30),
        cnn("nasnet_large", 250.0, 3.9, 0.82, 0.52, 1.80),
        cnn("pnasnet_mobile", 60.0, 7.9, 0.79, 0.56, 0.30),
        cnn("pnasnet_large", 245.0, 3.5, 0.82, 0.52, 1.75),
        cnn("xception_65", 130.0, 5.6, 0.83, 0.50, 0.50),
    ]
}

/// VGG16 — the paper's IMG1 reference model.
pub fn vgg16() -> ModelProfile {
    imagenet42()
        .into_iter()
        .find(|m| m.name == "vgg_16")
        // lint:allow(no-panic): the zoo table is a compile-time constant containing vgg_16; covered by tests
        .expect("vgg_16 in zoo")
}

/// ResNet50 — the paper's IMG2 reference model (and the Fig. 3 subject).
pub fn resnet50() -> ModelProfile {
    imagenet42()
        .into_iter()
        .find(|m| m.name == "resnet_v1_50")
        // lint:allow(no-panic): the zoo table is a compile-time constant containing resnet_v1_50; covered by tests
        .expect("resnet_v1_50 in zoo")
}

/// The PTB word-level RNN — the paper's NLP1 reference model.
///
/// Latency is per word; sentence-level deadlines are shared across the
/// words of a sentence (paper §3.2 step 2).
pub fn rnn_ptb() -> ModelProfile {
    ModelProfile {
        name: "rnn_ptb_w1024".to_string(),
        class: WorkloadClass::Rnn,
        metric: QualityMetric::Perplexity,
        ref_latency_s: 0.040,
        quality: -115.0,
        fail_quality: -PTB_FAIL_PERPLEXITY,
        rho: 0.55,
        mem_intensity: 0.70,
        footprint_gb: 0.35,
        anytime: None,
    }
}

/// BERT-base on SQuAD — the paper's NLP2 reference model.
pub fn bert_base() -> ModelProfile {
    ModelProfile {
        name: "bert_base_squad".to_string(),
        class: WorkloadClass::Transformer,
        metric: QualityMetric::F1,
        ref_latency_s: 0.320,
        quality: 0.884,
        fail_quality: 0.0,
        rho: 0.88,
        mem_intensity: 0.55,
        footprint_gb: 1.30,
        anytime: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zoo_has_42_valid_models() {
        let zoo = imagenet42();
        assert_eq!(zoo.len(), 42);
        for m in &zoo {
            assert!(m.validate().is_ok(), "{}: {:?}", m.name, m.validate());
        }
        // Names are unique.
        let mut names: Vec<&str> = zoo.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 42);
    }

    #[test]
    fn paper_spans_hold() {
        let zoo = imagenet42();
        let lat_min = zoo
            .iter()
            .map(|m| m.ref_latency_s)
            .fold(f64::INFINITY, f64::min);
        let lat_max = zoo
            .iter()
            .map(|m| m.ref_latency_s)
            .fold(f64::NEG_INFINITY, f64::max);
        // "the fastest model runs almost 18x faster than the slowest one".
        let span = lat_max / lat_min;
        assert!(span > 16.0 && span < 20.0, "latency span = {span}");

        let err_min = zoo
            .iter()
            .map(|m| (1.0 - m.quality) * 100.0)
            .fold(f64::INFINITY, f64::min);
        let err_max = zoo
            .iter()
            .map(|m| (1.0 - m.quality) * 100.0)
            .fold(f64::NEG_INFINITY, f64::max);
        // "about 7.8x lower error rate".
        let espan = err_max / err_min;
        assert!(espan > 7.0 && espan < 8.5, "error span = {espan}");
    }

    #[test]
    fn no_single_best_model() {
        // Paper §2.1: "there is no magic DNN that offers both the best
        // accuracy and the lowest latency."
        let zoo = imagenet42();
        let fastest = zoo
            .iter()
            .min_by(|a, b| a.ref_latency_s.partial_cmp(&b.ref_latency_s).unwrap())
            .unwrap();
        let best = zoo
            .iter()
            .max_by(|a, b| a.quality.partial_cmp(&b.quality).unwrap())
            .unwrap();
        assert_ne!(fastest.name, best.name);
        assert!(best.ref_latency_s > fastest.ref_latency_s * 10.0);
    }

    #[test]
    fn vgg_is_dominated() {
        // VGG16 must sit above the hull: some model is both faster and
        // more accurate.
        let zoo = imagenet42();
        let vgg = vgg16();
        assert!(zoo
            .iter()
            .any(|m| m.ref_latency_s < vgg.ref_latency_s && m.quality > vgg.quality));
    }

    #[test]
    fn reference_models_resolve() {
        assert_eq!(vgg16().name, "vgg_16");
        assert_eq!(resnet50().name, "resnet_v1_50");
        assert!(rnn_ptb().validate().is_ok());
        assert!(bert_base().validate().is_ok());
    }

    #[test]
    fn rnn_is_memory_bound() {
        let r = rnn_ptb();
        assert!(r.mem_intensity > 0.6);
        assert!(r.rho < 0.6);
    }
}
