//! Model profiles: everything ALERT knows about a DNN offline.
//!
//! A profile captures the paper's offline profiling pass (§3.3): the mean
//! inference latency under the nominal environment (CPU2 at the maximum
//! power cap), the model's output quality, and the hardware-facing traits
//! that determine how latency responds to power caps, platforms and
//! contention.
//!
//! Quality is a single score where **higher is better**: top-5 accuracy in
//! `[0, 1]` for image classification, *negative* perplexity for sentence
//! prediction. Both of the paper's objectives (Eqs. 1–2, 7, 13) are affine
//! in quality, so any monotone affine scale yields the same decisions;
//! [`QualityMetric`] converts scores back to the paper's reporting units
//! (error-rate %, perplexity).

use alert_platform::platform::WorkloadClass;
use serde::{Deserialize, Serialize};

/// How to interpret (and report) a quality score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityMetric {
    /// Score is top-5 accuracy in `[0, 1]`; reported as error-rate %.
    Top5Accuracy,
    /// Score is negative perplexity; reported as perplexity.
    Perplexity,
    /// Score is an F1 fraction in `[0, 1]` (question answering);
    /// reported as (1 − F1) %.
    F1,
}

impl QualityMetric {
    /// Converts a score to the paper's reporting unit
    /// (error-rate %, perplexity, or 1−F1 %). All are "lower is better".
    pub fn report(&self, score: f64) -> f64 {
        match self {
            QualityMetric::Top5Accuracy | QualityMetric::F1 => (1.0 - score) * 100.0,
            QualityMetric::Perplexity => -score,
        }
    }

    /// Converts a reporting-unit value back to a score.
    pub fn score_from_report(&self, report: f64) -> f64 {
        match self {
            QualityMetric::Top5Accuracy | QualityMetric::F1 => 1.0 - report / 100.0,
            QualityMetric::Perplexity => -report,
        }
    }
}

/// One output point of an anytime DNN.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnytimeStage {
    /// Cumulative latency of this output as a fraction of the full
    /// network's latency, in `(0, 1]`.
    pub frac: f64,
    /// Quality score of this output.
    pub quality: f64,
}

/// The staircase of outputs of an anytime DNN (paper §3.5, Eq. 13).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnytimeSpec {
    stages: Vec<AnytimeStage>,
}

impl AnytimeSpec {
    /// Builds a staircase.
    ///
    /// # Panics
    ///
    /// Panics unless stages are non-empty, fractions are strictly
    /// increasing and end at 1.0, and qualities are strictly increasing
    /// (later outputs are more reliable, paper §3.5).
    pub fn new(stages: Vec<AnytimeStage>) -> Self {
        let (Some(first), Some(last)) = (stages.first(), stages.last()) else {
            // lint:allow(no-panic): documented panic contract for construction-time misuse
            panic!("anytime spec needs at least one stage");
        };
        for w in stages.windows(2) {
            let [lo, hi] = w else { continue };
            assert!(hi.frac > lo.frac, "stage fractions must strictly increase");
            assert!(
                hi.quality > lo.quality,
                "stage qualities must strictly increase"
            );
        }
        assert!(
            (last.frac - 1.0).abs() < 1e-9,
            "final stage must complete the network (frac = 1.0)"
        );
        assert!(first.frac > 0.0, "first stage fraction must be positive");
        AnytimeSpec { stages }
    }

    /// The stages, earliest first.
    pub fn stages(&self) -> &[AnytimeStage] {
        &self.stages
    }

    /// Number of outputs.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// `true` if there are no stages (never true post-construction; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Offline profile of one DNN.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Model name (e.g. `"resnet_v1_50"`).
    pub name: String,
    /// Hardware-mapping class.
    pub class: WorkloadClass,
    /// Quality metric for this task.
    pub metric: QualityMetric,
    /// Mean inference latency at the profiling condition
    /// (CPU2 @ maximum cap, no contention), in seconds.
    pub ref_latency_s: f64,
    /// Final-output quality score (higher better).
    pub quality: f64,
    /// Quality of the fallback when the deadline is missed with no output
    /// (random guess: 0.005 top-5 for 1000 classes; a large perplexity for
    /// language models).
    pub fail_quality: f64,
    /// Frequency-sensitive (compute-bound) fraction ρ ∈ [0, 1].
    pub rho: f64,
    /// Sensitivity to memory-bandwidth contention ∈ [0, 1].
    pub mem_intensity: f64,
    /// Weights + activation memory in GB (decides platform fit).
    pub footprint_gb: f64,
    /// `Some` for anytime DNNs.
    pub anytime: Option<AnytimeSpec>,
}

impl ModelProfile {
    /// `true` if this is an anytime DNN.
    pub fn is_anytime(&self) -> bool {
        self.anytime.is_some()
    }

    /// Quality staircase seen at a normalized completion fraction: the best
    /// output available once `frac` of the full latency has elapsed, or
    /// `fail_quality` when no output is ready yet.
    pub fn quality_at_fraction(&self, frac: f64) -> f64 {
        match &self.anytime {
            None => {
                if frac >= 1.0 {
                    self.quality
                } else {
                    self.fail_quality
                }
            }
            Some(spec) => {
                let mut q = self.fail_quality;
                for s in spec.stages() {
                    if frac + 1e-12 >= s.frac {
                        q = s.quality;
                    } else {
                        break;
                    }
                }
                q
            }
        }
    }

    /// Validates profile invariants; returns the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("empty model name".into());
        }
        if !(self.ref_latency_s.is_finite() && self.ref_latency_s > 0.0) {
            return Err(format!("bad ref latency {}", self.ref_latency_s));
        }
        if !(0.0..=1.0).contains(&self.rho) {
            return Err(format!("rho out of range: {}", self.rho));
        }
        if !(0.0..=1.0).contains(&self.mem_intensity) {
            return Err(format!(
                "mem_intensity out of range: {}",
                self.mem_intensity
            ));
        }
        if self.fail_quality >= self.quality {
            return Err("fail_quality must be below final quality".into());
        }
        if self.metric == QualityMetric::Top5Accuracy && !(0.0..=1.0).contains(&self.quality) {
            return Err(format!("accuracy out of range: {}", self.quality));
        }
        if let Some(a) = &self.anytime {
            let (Some(first), Some(last)) = (a.stages().first(), a.stages().last()) else {
                return Err("anytime spec has no stages".into());
            };
            if (last.quality - self.quality).abs() > 1e-9 {
                return Err("final stage quality must equal profile quality".into());
            }
            if first.quality <= self.fail_quality {
                return Err("first stage must beat the fallback".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trad() -> ModelProfile {
        ModelProfile {
            name: "toy".into(),
            class: WorkloadClass::Cnn,
            metric: QualityMetric::Top5Accuracy,
            ref_latency_s: 0.1,
            quality: 0.95,
            fail_quality: 0.005,
            rho: 0.85,
            mem_intensity: 0.4,
            footprint_gb: 0.5,
            anytime: None,
        }
    }

    fn anytime() -> ModelProfile {
        ModelProfile {
            name: "toy_any".into(),
            anytime: Some(AnytimeSpec::new(vec![
                AnytimeStage {
                    frac: 0.3,
                    quality: 0.85,
                },
                AnytimeStage {
                    frac: 0.6,
                    quality: 0.91,
                },
                AnytimeStage {
                    frac: 1.0,
                    quality: 0.94,
                },
            ])),
            quality: 0.94,
            ..trad()
        }
    }

    #[test]
    fn metric_roundtrip() {
        let m = QualityMetric::Top5Accuracy;
        assert!((m.report(0.95) - 5.0).abs() < 1e-12);
        assert!((m.score_from_report(5.0) - 0.95).abs() < 1e-12);
        let p = QualityMetric::Perplexity;
        assert!((p.report(-120.0) - 120.0).abs() < 1e-12);
        assert!((p.score_from_report(120.0) + 120.0).abs() < 1e-12);
    }

    #[test]
    fn traditional_quality_is_step() {
        let t = trad();
        assert_eq!(t.quality_at_fraction(0.99), 0.005);
        assert_eq!(t.quality_at_fraction(1.0), 0.95);
        assert_eq!(t.quality_at_fraction(2.0), 0.95);
    }

    #[test]
    fn anytime_quality_is_staircase() {
        let a = anytime();
        assert_eq!(a.quality_at_fraction(0.1), 0.005);
        assert_eq!(a.quality_at_fraction(0.3), 0.85);
        assert_eq!(a.quality_at_fraction(0.45), 0.85);
        assert_eq!(a.quality_at_fraction(0.6), 0.91);
        assert_eq!(a.quality_at_fraction(1.0), 0.94);
    }

    #[test]
    fn validation_catches_problems() {
        assert!(trad().validate().is_ok());
        assert!(anytime().validate().is_ok());
        let mut bad = trad();
        bad.rho = 1.5;
        assert!(bad.validate().is_err());
        let mut bad = trad();
        bad.fail_quality = 0.99;
        assert!(bad.validate().is_err());
        let mut bad = trad();
        bad.ref_latency_s = 0.0;
        assert!(bad.validate().is_err());
        let mut bad = anytime();
        bad.quality = 0.99; // no longer equals final stage quality
        assert!(bad.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "strictly increase")]
    fn anytime_spec_rejects_non_monotone_fracs() {
        let _ = AnytimeSpec::new(vec![
            AnytimeStage {
                frac: 0.5,
                quality: 0.8,
            },
            AnytimeStage {
                frac: 0.4,
                quality: 0.9,
            },
        ]);
    }

    #[test]
    #[should_panic(expected = "final stage must complete")]
    fn anytime_spec_requires_full_final_stage() {
        let _ = AnytimeSpec::new(vec![AnytimeStage {
            frac: 0.5,
            quality: 0.8,
        }]);
    }
}
