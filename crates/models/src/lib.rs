//! DNN model zoo and inference simulator for the ALERT reproduction.
//!
//! ALERT never looks inside a network: it consumes profiled
//! (latency, quality, power) tables and per-input feedback. This crate
//! therefore models DNNs as *profiles* — reference latency at the CPU2
//! profiling condition, output quality, frequency sensitivity, memory
//! intensity, footprint — plus an executor that realizes per-input latency
//! on a simulated platform. That preserves exactly the interface the
//! controller sees on real hardware while giving the oracle schemes the
//! ground truth they need.
//!
//! Modules:
//!
//! * [`profile`] — [`ModelProfile`](profile::ModelProfile) and the anytime
//!   staircase ([`AnytimeSpec`](profile::AnytimeSpec)); quality metrics
//!   (top-5 accuracy for images, perplexity for sentence prediction).
//! * [`zoo`] — the 42 ImageNet classification networks of paper Fig. 2 and
//!   the individual reference models (VGG16, ResNet50, RNN, BERT).
//! * [`family`] — candidate sets fed to schedulers: the Sparse-ResNet
//!   traditional family + Depth-Nest anytime (image classification), the
//!   RNN width family + Width-Nest anytime (sentence prediction).
//! * [`inference`] — the per-input executor: traditional and anytime
//!   execution, early stopping, stage completions, deadline quality.

pub mod family;
pub mod inference;
pub mod profile;
pub mod zoo;

pub use family::ModelFamily;
pub use inference::{execute, InferenceResult, StopPolicy};
pub use profile::{AnytimeSpec, AnytimeStage, ModelProfile, QualityMetric};
