//! The per-input inference executor.
//!
//! Realizes one inference of a [`ModelProfile`] on a [`Platform`] at a
//! power cap, under an environment factor (the product of contention,
//! baseline noise, and input variability sampled by the harness). The
//! executor produces the realized latency, every anytime stage completion,
//! and the *profile-equivalent* time of the work performed — the
//! denominator of the slowdown observation ξ = t_observed / t_profile that
//! feeds ALERT's Kalman filter (paper Eq. 5).
//!
//! Stop policies model the paper's execution modes:
//!
//! * traditional DNNs run to completion (a missed deadline yields the
//!   random-guess fallback, Eq. 3, but the network still burns its time);
//! * anytime DNNs can be stopped at the deadline, taking the last
//!   completed output (App-only baseline, §3.5), or earlier, at a
//!   scheduler-chosen stage, which is how ALERT saves energy on anytime
//!   networks ("stopping the inference sometimes before the deadline",
//!   §3.5).

use crate::profile::ModelProfile;
use alert_platform::error::PowerError;
use alert_platform::platform::Platform;
use alert_stats::units::{Seconds, Watts};
use serde::{Deserialize, Serialize};

/// When to stop the inference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum StopPolicy {
    /// Run the full network regardless of time.
    RunToCompletion,
    /// Hard-stop at an absolute time from inference start (anytime nets
    /// keep their last completed output; traditional nets lose everything).
    AtTime(Seconds),
    /// Stop once stage `k` (0-based) completes; later stages are skipped.
    AfterStage(usize),
    /// Stop at the earlier of the two: time bound or stage completion.
    AtTimeOrStage(Seconds, usize),
}

/// The outcome of one inference.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// Time actually spent executing (until completion or stop).
    pub latency: Seconds,
    /// What the full network would have taken in this environment.
    pub full_latency: Seconds,
    /// `(completion time, quality)` of every output produced before the
    /// stop, in order. Empty if nothing completed.
    pub stage_completions: Vec<(Seconds, f64)>,
    /// `true` if the final output was produced.
    pub ran_to_completion: bool,
    /// Profiled time of the work performed — pair with `latency` to form
    /// the slowdown observation ξ.
    pub profile_equivalent: Seconds,
}

impl InferenceResult {
    /// The observed global-slowdown sample `ξ = latency /
    /// profile_equivalent`, or `None` when no work was performed.
    pub fn observed_slowdown(&self) -> Option<f64> {
        if self.profile_equivalent.get() > 0.0 {
            Some(self.latency / self.profile_equivalent)
        } else {
            None
        }
    }

    /// Quality of the answer available at `deadline` (paper Eqs. 3/13):
    /// the best output completed by then, or `fail_quality`.
    pub fn quality_by(&self, deadline: Seconds, fail_quality: f64) -> f64 {
        let mut q = fail_quality;
        for &(t, stage_q) in &self.stage_completions {
            if t <= deadline {
                q = q.max(stage_q);
            } else {
                break;
            }
        }
        q
    }

    /// Quality of the best output produced at all (no deadline).
    pub fn best_quality(&self, fail_quality: f64) -> f64 {
        self.stage_completions
            .iter()
            .map(|&(_, q)| q)
            .fold(fail_quality, f64::max)
    }
}

/// Profiled latency of the full network on `platform` at `cap` — the
/// `t^prof_{i,j}` table entry (paper §3.3).
pub fn profile_latency(
    profile: &ModelProfile,
    platform: &Platform,
    cap: Watts,
) -> Result<Seconds, PowerError> {
    platform.profile_latency(
        Seconds(profile.ref_latency_s),
        profile.class,
        profile.rho,
        cap,
    )
}

/// Profiled completion time of anytime stage `k` (0-based); for
/// traditional models only `k == 0` is valid and equals the full latency.
///
/// # Panics
///
/// Panics if `k` is out of range for the model.
pub fn stage_profile_latency(
    profile: &ModelProfile,
    k: usize,
    platform: &Platform,
    cap: Watts,
) -> Result<Seconds, PowerError> {
    let full = profile_latency(profile, platform, cap)?;
    match &profile.anytime {
        None => {
            assert!(k == 0, "traditional model has a single stage");
            Ok(full)
        }
        Some(spec) => {
            let stages = spec.stages();
            assert!(k < stages.len(), "stage {k} out of range");
            Ok(full * stages[k].frac)
        }
    }
}

/// The per-inference power actually drawn while running, as a fraction of
/// the platform's capped draw: small models do not saturate the package.
pub fn power_utilization(profile: &ModelProfile) -> f64 {
    0.65 + 0.35 * profile.rho
}

/// Power drawn while `profile` executes at `cap` on `platform` — the
/// `p_{i,j}` table entry.
pub fn run_power(profile: &ModelProfile, platform: &Platform, cap: Watts) -> Watts {
    platform.run_draw(cap) * power_utilization(profile)
}

/// Executes one inference.
///
/// `env_factor` multiplies every profiled duration; it bundles contention,
/// baseline noise, and input variability (all ≥ 0, sampled by the caller
/// so the executor stays deterministic).
///
/// # Panics
///
/// Panics if `env_factor` is not finite and positive, or if a stop policy
/// references an out-of-range stage.
pub fn execute(
    profile: &ModelProfile,
    platform: &Platform,
    cap: Watts,
    env_factor: f64,
    policy: StopPolicy,
) -> Result<InferenceResult, PowerError> {
    assert!(
        env_factor.is_finite() && env_factor > 0.0,
        "env_factor must be positive, got {env_factor}"
    );
    let t_prof_full = profile_latency(profile, platform, cap)?;
    let full = t_prof_full * env_factor;

    // Stage schedule: (realized completion time, quality).
    let schedule: Vec<(Seconds, f64)> = match &profile.anytime {
        None => vec![(full, profile.quality)],
        Some(spec) => spec
            .stages()
            .iter()
            .map(|s| (full * s.frac, s.quality))
            .collect(),
    };

    let stage_bound = |k: usize| -> Seconds {
        assert!(k < schedule.len(), "stop stage {k} out of range");
        schedule[k].0
    };
    let stop_at: Seconds = match policy {
        StopPolicy::RunToCompletion => full,
        StopPolicy::AtTime(t) => full.min(Seconds(t.get().max(0.0))),
        StopPolicy::AfterStage(k) => stage_bound(k),
        StopPolicy::AtTimeOrStage(t, k) => stage_bound(k).min(full.min(Seconds(t.get().max(0.0)))),
    };

    let stage_completions: Vec<(Seconds, f64)> = schedule
        .iter()
        .copied()
        .filter(|&(t, _)| t <= stop_at + Seconds(1e-15))
        .collect();
    let ran_to_completion = (stop_at - full).get().abs() < 1e-15 || stop_at >= full;

    // Profile-equivalent time of the executed fraction: timing the work we
    // actually did against its profiled cost, which is how a real harness
    // forms the slowdown sample even for early-stopped inferences.
    let executed_fraction = if full.get() > 0.0 {
        stop_at / full
    } else {
        0.0
    };
    let profile_equivalent = t_prof_full * executed_fraction;

    Ok(InferenceResult {
        latency: stop_at,
        full_latency: full,
        stage_completions,
        ran_to_completion,
        profile_equivalent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::family::{depth_nest, sparse_resnet_family};
    use crate::zoo::resnet50;

    fn cpu2() -> Platform {
        Platform::cpu2()
    }

    #[test]
    fn traditional_run_to_completion() {
        let m = resnet50();
        let p = cpu2();
        let r = execute(&m, &p, Watts(100.0), 1.0, StopPolicy::RunToCompletion).unwrap();
        assert!(r.ran_to_completion);
        assert_eq!(r.stage_completions.len(), 1);
        assert!((r.latency.get() - m.ref_latency_s).abs() < 1e-12);
        assert!((r.observed_slowdown().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn env_factor_scales_latency_and_slowdown() {
        let m = resnet50();
        let p = cpu2();
        let r = execute(&m, &p, Watts(100.0), 1.37, StopPolicy::RunToCompletion).unwrap();
        assert!((r.latency.get() - m.ref_latency_s * 1.37).abs() < 1e-12);
        assert!((r.observed_slowdown().unwrap() - 1.37).abs() < 1e-12);
    }

    #[test]
    fn lower_cap_slows_execution() {
        let m = resnet50();
        let p = cpu2();
        let fast = execute(&m, &p, Watts(100.0), 1.0, StopPolicy::RunToCompletion).unwrap();
        let slow = execute(&m, &p, Watts(40.0), 1.0, StopPolicy::RunToCompletion).unwrap();
        assert!(slow.latency.get() > fast.latency.get() * 2.0);
        // Slowdown observation is still ~1: the cap is part of the profile.
        assert!((slow.observed_slowdown().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn traditional_missing_deadline_fails() {
        let m = resnet50();
        let p = cpu2();
        let r = execute(&m, &p, Watts(100.0), 2.0, StopPolicy::RunToCompletion).unwrap();
        let deadline = Seconds(m.ref_latency_s * 1.5);
        assert_eq!(r.quality_by(deadline, m.fail_quality), m.fail_quality);
        assert_eq!(r.best_quality(m.fail_quality), m.quality);
    }

    #[test]
    fn anytime_stops_at_deadline_with_partial_output() {
        let m = depth_nest();
        let p = cpu2();
        let full = profile_latency(&m, &p, Watts(100.0)).unwrap();
        // Stop at 70% of the full time: stages at 18%, 35%, 62% complete.
        let stop = full * 0.7;
        let r = execute(&m, &p, Watts(100.0), 1.0, StopPolicy::AtTime(stop)).unwrap();
        assert!(!r.ran_to_completion);
        assert_eq!(r.stage_completions.len(), 3);
        let q = r.quality_by(stop, m.fail_quality);
        assert!((q - 0.932).abs() < 1e-12);
        assert!((r.latency.get() - stop.get()).abs() < 1e-12);
    }

    #[test]
    fn anytime_stop_after_stage_skips_rest() {
        let m = depth_nest();
        let p = cpu2();
        let r = execute(&m, &p, Watts(100.0), 1.0, StopPolicy::AfterStage(1)).unwrap();
        assert_eq!(r.stage_completions.len(), 2);
        assert!((r.best_quality(m.fail_quality) - 0.904).abs() < 1e-12);
        // Latency is the stage-1 completion time (35% of full).
        assert!((r.latency.get() - 0.35 * r.full_latency.get()).abs() < 1e-12);
        // Early stop keeps the slowdown observation unbiased.
        assert!((r.observed_slowdown().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn at_time_or_stage_takes_earlier() {
        let m = depth_nest();
        let p = cpu2();
        let full = profile_latency(&m, &p, Watts(100.0)).unwrap();
        // Time bound far beyond stage 1 completion: stage wins.
        let r = execute(
            &m,
            &p,
            Watts(100.0),
            1.0,
            StopPolicy::AtTimeOrStage(full, 1),
        )
        .unwrap();
        assert!((r.latency.get() - 0.35 * full.get()).abs() < 1e-12);
        // Time bound before stage 1: time wins.
        let r = execute(
            &m,
            &p,
            Watts(100.0),
            1.0,
            StopPolicy::AtTimeOrStage(full * 0.2, 1),
        )
        .unwrap();
        assert!((r.latency.get() - 0.2 * full.get()).abs() < 1e-12);
        assert_eq!(r.stage_completions.len(), 1);
    }

    #[test]
    fn stopping_traditional_early_loses_everything() {
        let m = resnet50();
        let p = cpu2();
        let r = execute(
            &m,
            &p,
            Watts(100.0),
            1.0,
            StopPolicy::AtTime(Seconds(m.ref_latency_s * 0.5)),
        )
        .unwrap();
        assert!(r.stage_completions.is_empty());
        assert_eq!(r.best_quality(m.fail_quality), m.fail_quality);
        // But the slowdown observation from partial work is still valid.
        assert!((r.observed_slowdown().unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn family_profiles_are_monotone_in_cap() {
        let p = cpu2();
        for m in sparse_resnet_family() {
            let mut prev = f64::INFINITY;
            for cap in p.power_settings() {
                let t = profile_latency(&m, &p, cap).unwrap().get();
                assert!(t <= prev + 1e-12, "{}: latency rose with cap", m.name);
                prev = t;
            }
        }
    }

    #[test]
    fn run_power_scales_with_utilization() {
        let p = cpu2();
        let big = resnet50();
        let small = &sparse_resnet_family()[0];
        // Same rho here, so compare against a memory-bound model instead.
        let rnn = crate::zoo::rnn_ptb();
        let pw_big = run_power(&big, &p, Watts(80.0));
        let pw_rnn = run_power(&rnn, &p, Watts(80.0));
        assert!(pw_big > pw_rnn);
        assert!(pw_big <= Watts(80.0));
        let _ = small;
    }

    #[test]
    #[should_panic(expected = "env_factor must be positive")]
    fn rejects_bad_env_factor() {
        let _ = execute(
            &resnet50(),
            &cpu2(),
            Watts(100.0),
            0.0,
            StopPolicy::RunToCompletion,
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_stop_stage() {
        let _ = execute(
            &depth_nest(),
            &cpu2(),
            Watts(100.0),
            1.0,
            StopPolicy::AfterStage(10),
        );
    }

    #[test]
    fn zero_time_stop_yields_no_slowdown_sample() {
        let r = execute(
            &resnet50(),
            &cpu2(),
            Watts(100.0),
            1.0,
            StopPolicy::AtTime(Seconds(0.0)),
        )
        .unwrap();
        assert!(r.observed_slowdown().is_none());
    }
}
