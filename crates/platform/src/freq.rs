//! The power-cap → throughput response curve.
//!
//! Real DVFS hardware shows three regimes as the RAPL cap rises:
//!
//! 1. a *floor* at low caps, where the chip runs at its minimum frequency
//!    and memory stalls dominate anyway,
//! 2. a *ramp* in the middle, where every extra watt buys frequency,
//! 3. *saturation* at high caps, where the workload cannot draw the budget
//!    and extra cap headroom changes nothing.
//!
//! We model the normalized core throughput σ(cap) ∈ (0, 1] as a floored
//! logistic, normalized to 1 at the maximum cap. A workload with
//! compute-bound fraction ρ then slows down by `ρ/σ + (1−ρ)` (Amdahl over
//! the frequency-sensitive fraction).
//!
//! This shape is what makes the paper's Fig. 3 terrain emerge: with a fixed
//! input period, period energy `cap·t(cap) + p_idle·(T − t(cap))` is
//! *non-monotone* in the cap — lowest at the minimum cap, peaking mid-range
//! — so no greedy heuristic can pick the best cap, which is exactly the
//! paper's argument for model-based selection (§2.1).

use serde::{Deserialize, Serialize};

/// A floored-logistic throughput curve, normalized to 1.0 at `p_max`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThroughputCurve {
    /// Fraction of peak throughput still available at very low caps
    /// (minimum frequency floor), before normalization.
    pub floor: f64,
    /// Cap (watts, raw f64) at the logistic midpoint.
    pub p_mid: f64,
    /// Logistic width in watts: smaller = steeper ramp.
    pub width: f64,
    /// The maximum cap the curve is normalized against.
    pub p_max: f64,
}

impl ThroughputCurve {
    /// Creates a curve.
    ///
    /// # Panics
    ///
    /// Panics if `floor` is outside `(0, 1]`, `width` is not positive, or
    /// `p_max` is not positive.
    pub fn new(floor: f64, p_mid: f64, width: f64, p_max: f64) -> Self {
        assert!(
            floor > 0.0 && floor <= 1.0,
            "floor must be in (0,1], got {floor}"
        );
        assert!(width > 0.0, "width must be positive");
        assert!(p_max > 0.0, "p_max must be positive");
        ThroughputCurve {
            floor,
            p_mid,
            width,
            p_max,
        }
    }

    /// Raw (un-normalized) floored logistic.
    fn raw(&self, cap_w: f64) -> f64 {
        let l = 1.0 / (1.0 + (-(cap_w - self.p_mid) / self.width).exp());
        self.floor + (1.0 - self.floor) * l
    }

    /// Normalized throughput σ(cap) ∈ (0, 1]; σ(p_max) = 1.
    ///
    /// Caps above `p_max` saturate at 1 (the workload cannot use more).
    pub fn throughput(&self, cap_w: f64) -> f64 {
        if cap_w >= self.p_max {
            return 1.0;
        }
        (self.raw(cap_w) / self.raw(self.p_max)).min(1.0)
    }

    /// Latency slowdown multiplier for a workload whose frequency-sensitive
    /// fraction is `rho` ∈ [0, 1]: `ρ/σ(cap) + (1 − ρ)`.
    ///
    /// At `cap == p_max` this is exactly 1 (the profiling condition).
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use alert_platform::freq::ThroughputCurve;
    ///
    /// // The CPU2 preset shape: >2x slowdown at 40 W vs 100 W.
    /// let c = ThroughputCurve::new(0.3, 78.0, 8.0, 100.0);
    /// let slow = c.slowdown(40.0, 0.85);
    /// assert!(slow > 2.0 && slow < 4.0, "slowdown = {slow}");
    /// assert!((c.slowdown(100.0, 0.85) - 1.0).abs() < 1e-12);
    /// ```
    pub fn slowdown(&self, cap_w: f64, rho: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&rho),
            "rho must be in [0,1], got {rho}"
        );
        rho / self.throughput(cap_w) + (1.0 - rho)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu2_curve() -> ThroughputCurve {
        ThroughputCurve::new(0.3, 78.0, 8.0, 100.0)
    }

    #[test]
    fn throughput_is_monotone_in_cap() {
        let c = cpu2_curve();
        let mut prev = 0.0;
        for i in 0..=60 {
            let cap = 40.0 + i as f64;
            let t = c.throughput(cap);
            assert!(t >= prev, "throughput must not decrease");
            assert!(t > 0.0 && t <= 1.0);
            prev = t;
        }
    }

    #[test]
    fn throughput_saturates_at_pmax() {
        let c = cpu2_curve();
        assert_eq!(c.throughput(100.0), 1.0);
        assert_eq!(c.throughput(150.0), 1.0);
    }

    #[test]
    fn slowdown_is_one_at_pmax() {
        let c = cpu2_curve();
        for &rho in &[0.0, 0.3, 0.85, 1.0] {
            assert!((c.slowdown(100.0, rho) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn memory_bound_workloads_are_less_sensitive() {
        let c = cpu2_curve();
        // At 40 W, a compute-bound kernel slows far more than a memory-bound one.
        let compute = c.slowdown(40.0, 0.95);
        let memory = c.slowdown(40.0, 0.5);
        assert!(compute > memory * 1.3, "compute={compute} memory={memory}");
    }

    #[test]
    fn fig3_shape_emerges() {
        // Reproduce the Fig. 3 sanity conditions with the CPU2 parameters:
        // period energy E(p) = run_draw*t(p) + idle*(T - t(p)), T = t(40).
        let c = cpu2_curve();
        let rho = 0.85;
        let idle = 18.0;
        let max_draw = 95.0;
        let t = |p: f64| c.slowdown(p, rho);
        let period = t(40.0);
        let energy = |p: f64| {
            let tp = t(p);
            let run = p.min(max_draw);
            run * tp + idle * (period - tp).max(0.0)
        };
        // (1) >2x latency span.
        assert!(t(40.0) / t(100.0) > 2.0, "span = {}", t(40.0) / t(100.0));
        // (2) energy minimum at the lowest cap.
        let caps: Vec<f64> = (0..=30).map(|i| 40.0 + 2.0 * i as f64).collect();
        let e_min = caps
            .iter()
            .cloned()
            .fold(f64::INFINITY, |m, p| m.min(energy(p)));
        assert!(
            (energy(40.0) - e_min).abs() < 1e-9,
            "40W should be cheapest"
        );
        // (3) the energy maximum sits strictly inside the range (non-monotone).
        let (mut argmax, mut emax) = (40.0, f64::NEG_INFINITY);
        for &p in &caps {
            if energy(p) > emax {
                emax = energy(p);
                argmax = p;
            }
        }
        assert!(
            argmax > 45.0 && argmax < 95.0,
            "energy max at {argmax}, should be mid-range"
        );
        // (4) the max-to-min energy ratio is in the paper's ballpark (~1.3).
        let ratio = emax / energy(40.0);
        assert!(ratio > 1.15 && ratio < 1.6, "ratio = {ratio}");
    }

    #[test]
    #[should_panic(expected = "rho must be in [0,1]")]
    fn slowdown_rejects_bad_rho() {
        let _ = cpu2_curve().slowdown(50.0, 1.5);
    }

    #[test]
    #[should_panic(expected = "floor must be in (0,1]")]
    fn rejects_bad_floor() {
        let _ = ThroughputCurve::new(0.0, 50.0, 5.0, 100.0);
    }
}
