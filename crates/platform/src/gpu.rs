//! The GPU frequency/power lookup table (PyNVML analogue).
//!
//! On the GPU the paper "uses PyNVML to control frequency and builds a
//! power-frequency lookup table" (§4): GPUs expose discrete SM clock
//! levels, each with a characteristic board power, and a power budget is
//! realized by picking the fastest level that fits. [`GpuFreqTable`] is
//! that table; the [`Platform`](crate::platform::Platform) preset for the
//! GPU derives both its candidate power settings and its throughput
//! response from it.

use crate::error::PowerError;
use alert_stats::units::Watts;
use serde::{Deserialize, Serialize};

/// One clock level of the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuLevel {
    /// SM clock in MHz.
    pub freq_mhz: f64,
    /// Board power draw at this level under a saturating DNN workload.
    pub power: Watts,
}

/// A monotone frequency→power table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuFreqTable {
    levels: Vec<GpuLevel>,
}

impl GpuFreqTable {
    /// Builds a table from levels.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two levels are given or if the levels are not
    /// strictly increasing in both frequency and power.
    pub fn new(levels: Vec<GpuLevel>) -> Self {
        assert!(levels.len() >= 2, "a lookup table needs at least 2 levels");
        for w in levels.windows(2) {
            let [lo, hi] = w else { continue };
            assert!(
                hi.freq_mhz > lo.freq_mhz && hi.power > lo.power,
                "levels must be strictly increasing in frequency and power"
            );
        }
        GpuFreqTable { levels }
    }

    /// A table shaped like an RTX 2080: SM clocks 300–1900 MHz, board power
    /// 100–215 W, with the sub-linear frequency-per-watt curve of real
    /// boards (power grows faster than frequency near the top).
    pub fn rtx2080() -> Self {
        // 26 levels: freq from 300 to 1900 MHz; power grows superlinearly.
        let n = 26;
        let mut levels = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / (n - 1) as f64;
            let freq = 300.0 + (1900.0 - 300.0) * t;
            // Power ≈ static + k·f^2.2 normalized into [100, 215].
            let dyn_frac = t.powf(2.2);
            let power = 100.0 + (215.0 - 100.0) * (0.15 * t + 0.85 * dyn_frac);
            levels.push(GpuLevel {
                freq_mhz: freq,
                power: Watts(power),
            });
        }
        GpuFreqTable::new(levels)
    }

    /// All levels, slowest first.
    pub fn levels(&self) -> &[GpuLevel] {
        &self.levels
    }

    /// The candidate power settings this table induces (one per level).
    pub fn power_settings(&self) -> Vec<Watts> {
        self.levels.iter().map(|l| l.power).collect()
    }

    /// The fastest level whose power fits within `budget`.
    ///
    /// Returns an error if even the slowest level exceeds the budget.
    pub fn level_for_budget(&self, budget: Watts) -> Result<GpuLevel, PowerError> {
        if !budget.is_finite() {
            return Err(PowerError::InvalidCap(budget.get()));
        }
        let mut chosen = None;
        for l in &self.levels {
            if l.power <= budget {
                chosen = Some(*l);
            } else {
                break;
            }
        }
        chosen.ok_or(PowerError::CapOutOfRange {
            requested: budget,
            min: self.levels[0].power, // lint:allow(no-panic): new() asserts at least two levels
            max: self.levels[self.levels.len() - 1].power,
        })
    }

    /// Normalized throughput at a power budget: the chosen level's
    /// frequency relative to the top level, floored by `mem_floor` (GPU
    /// kernels retain memory-bound throughput even at low clocks).
    ///
    /// # Panics
    ///
    /// Panics if `mem_floor` is outside `(0, 1]`.
    pub fn throughput(&self, budget: Watts, mem_floor: f64) -> Result<f64, PowerError> {
        assert!(
            mem_floor > 0.0 && mem_floor <= 1.0,
            "mem_floor must be in (0,1]"
        );
        let level = self.level_for_budget(budget)?;
        let f_max = self.levels[self.levels.len() - 1].freq_mhz;
        let rel = level.freq_mhz / f_max;
        Ok(mem_floor + (1.0 - mem_floor) * rel)
    }

    /// The slowest level's power (minimum feasible budget).
    pub fn min_power(&self) -> Watts {
        self.levels[0].power // lint:allow(no-panic): new() asserts at least two levels
    }

    /// The fastest level's power (maximum useful budget).
    pub fn max_power(&self) -> Watts {
        self.levels[self.levels.len() - 1].power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx2080_table_shape() {
        let t = GpuFreqTable::rtx2080();
        assert_eq!(t.levels().len(), 26);
        assert!((t.min_power().get() - 100.0).abs() < 1.0);
        assert!((t.max_power().get() - 215.0).abs() < 1.0);
    }

    #[test]
    fn budget_selects_fastest_fitting_level() {
        let t = GpuFreqTable::rtx2080();
        let full = t.level_for_budget(Watts(215.0)).unwrap();
        assert!((full.freq_mhz - 1900.0).abs() < 1e-9);
        let mid = t.level_for_budget(Watts(150.0)).unwrap();
        assert!(mid.freq_mhz < 1900.0 && mid.freq_mhz > 300.0);
        assert!(mid.power <= Watts(150.0));
        // Budget below the slowest level is infeasible.
        assert!(t.level_for_budget(Watts(50.0)).is_err());
    }

    #[test]
    fn budget_monotone_in_frequency() {
        let t = GpuFreqTable::rtx2080();
        let mut prev = 0.0;
        for b in [100.0, 120.0, 140.0, 160.0, 180.0, 200.0, 215.0] {
            let l = t.level_for_budget(Watts(b)).unwrap();
            assert!(l.freq_mhz >= prev);
            prev = l.freq_mhz;
        }
    }

    #[test]
    fn throughput_bounded_and_monotone() {
        let t = GpuFreqTable::rtx2080();
        let mut prev = 0.0;
        for b in [100.0, 130.0, 160.0, 190.0, 215.0] {
            let s = t.throughput(Watts(b), 0.45).unwrap();
            assert!(s > 0.0 && s <= 1.0);
            assert!(s >= prev);
            prev = s;
        }
        assert!((t.throughput(Watts(215.0), 0.45).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_settings_match_levels() {
        let t = GpuFreqTable::rtx2080();
        assert_eq!(t.power_settings().len(), t.levels().len());
    }

    #[test]
    #[should_panic(expected = "at least 2 levels")]
    fn rejects_tiny_table() {
        let _ = GpuFreqTable::new(vec![GpuLevel {
            freq_mhz: 300.0,
            power: Watts(100.0),
        }]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_non_monotone_table() {
        let _ = GpuFreqTable::new(vec![
            GpuLevel {
                freq_mhz: 300.0,
                power: Watts(100.0),
            },
            GpuLevel {
                freq_mhz: 200.0,
                power: Watts(150.0),
            },
        ]);
    }
}
