//! The GPU frequency/power lookup table (PyNVML analogue).
//!
//! On the GPU the paper "uses PyNVML to control frequency and builds a
//! power-frequency lookup table" (§4): GPUs expose discrete SM clock
//! levels, each with a characteristic board power, and a power budget is
//! realized by picking the fastest level that fits. [`GpuFreqTable`] is
//! that table; the [`Platform`](crate::platform::Platform) preset for the
//! GPU derives both its candidate power settings and its throughput
//! response from it.

use crate::error::PowerError;
use alert_stats::units::Watts;
use serde::{Deserialize, Serialize};

/// One clock level of the table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuLevel {
    /// SM clock in MHz.
    pub freq_mhz: f64,
    /// Board power draw at this level under a saturating DNN workload.
    pub power: Watts,
}

/// A monotone frequency→power table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuFreqTable {
    levels: Vec<GpuLevel>,
}

impl GpuFreqTable {
    /// Builds a table from levels.
    ///
    /// # Errors
    ///
    /// [`PowerError::TableTooSmall`] when fewer than two levels are given
    /// (an empty or single-level vector cannot express a DVFS choice);
    /// [`PowerError::NonMonotoneLevel`] when the levels are not strictly
    /// increasing in both frequency and power (an unsorted table would
    /// make [`GpuFreqTable::level_for_budget`] silently pick a slow
    /// level). Level vectors arrive from user configuration, so both are
    /// reported, never panicked on.
    pub fn new(levels: Vec<GpuLevel>) -> Result<Self, PowerError> {
        if levels.len() < 2 {
            return Err(PowerError::TableTooSmall { len: levels.len() });
        }
        for (i, w) in levels.windows(2).enumerate() {
            let [lo, hi] = w else { continue };
            if !(hi.freq_mhz > lo.freq_mhz && hi.power > lo.power) {
                return Err(PowerError::NonMonotoneLevel { index: i + 1 });
            }
        }
        Ok(GpuFreqTable { levels })
    }

    /// A table shaped like an RTX 2080: SM clocks 300–1900 MHz, board power
    /// 100–215 W, with the sub-linear frequency-per-watt curve of real
    /// boards (power grows faster than frequency near the top).
    pub fn rtx2080() -> Self {
        // 26 levels: freq from 300 to 1900 MHz; power grows superlinearly.
        let n = 26;
        let mut levels = Vec::with_capacity(n);
        for i in 0..n {
            let t = i as f64 / (n - 1) as f64;
            let freq = 300.0 + (1900.0 - 300.0) * t;
            // Power ≈ static + k·f^2.2 normalized into [100, 215].
            let dyn_frac = t.powf(2.2);
            let power = 100.0 + (215.0 - 100.0) * (0.15 * t + 0.85 * dyn_frac);
            levels.push(GpuLevel {
                freq_mhz: freq,
                power: Watts(power),
            });
        }
        // lint:allow(no-panic): the preset levels above are monotone by construction (freq and power both strictly increase in i)
        GpuFreqTable::new(levels).expect("preset levels are monotone")
    }

    /// All levels, slowest first.
    pub fn levels(&self) -> &[GpuLevel] {
        &self.levels
    }

    /// The candidate power settings this table induces (one per level).
    pub fn power_settings(&self) -> Vec<Watts> {
        self.levels.iter().map(|l| l.power).collect()
    }

    /// The fastest level whose power fits within `budget`.
    ///
    /// Returns an error if even the slowest level exceeds the budget.
    pub fn level_for_budget(&self, budget: Watts) -> Result<GpuLevel, PowerError> {
        if !budget.is_finite() {
            return Err(PowerError::InvalidCap(budget.get()));
        }
        let mut chosen = None;
        for l in &self.levels {
            if l.power <= budget {
                chosen = Some(*l);
            } else {
                break;
            }
        }
        chosen.ok_or(PowerError::CapOutOfRange {
            requested: budget,
            min: self.levels[0].power, // lint:allow(no-panic): new() asserts at least two levels
            max: self.levels[self.levels.len() - 1].power,
        })
    }

    /// Normalized throughput at a power budget: the chosen level's
    /// frequency relative to the top level, floored by `mem_floor` (GPU
    /// kernels retain memory-bound throughput even at low clocks).
    ///
    /// # Errors
    ///
    /// [`PowerError::InvalidFloor`] when `mem_floor` is outside `(0, 1]`
    /// (NaN included), [`PowerError::CapOutOfRange`] when `budget` is
    /// below the slowest level's power.
    pub fn throughput(&self, budget: Watts, mem_floor: f64) -> Result<f64, PowerError> {
        if !(mem_floor > 0.0 && mem_floor <= 1.0) {
            return Err(PowerError::InvalidFloor(mem_floor));
        }
        let level = self.level_for_budget(budget)?;
        let f_max = self.levels[self.levels.len() - 1].freq_mhz;
        let rel = level.freq_mhz / f_max;
        Ok(mem_floor + (1.0 - mem_floor) * rel)
    }

    /// The slowest level's power (minimum feasible budget).
    pub fn min_power(&self) -> Watts {
        self.levels[0].power // lint:allow(no-panic): new() validates at least two levels
    }

    /// The fastest level's power (maximum useful budget).
    pub fn max_power(&self) -> Watts {
        self.levels[self.levels.len() - 1].power
    }

    /// Number of clock-throttle steps below the top level (a throttle of
    /// `0` is the full clock; `throttle_steps()` is the deepest).
    pub fn throttle_steps(&self) -> usize {
        self.levels.len() - 1
    }

    /// The clock level `steps` throttle steps below the top, saturating
    /// at the slowest level — how an external clock throttle (thermal or
    /// scripted) lands on the discrete table.
    pub fn throttled_level(&self, steps: usize) -> GpuLevel {
        let top = self.levels.len() - 1;
        self.levels[top.saturating_sub(steps)]
    }

    /// The board power of the level `steps` throttle steps below the top
    /// — the cap ceiling a scripted GPU throttle enforces.
    pub fn throttled_power(&self, steps: usize) -> Watts {
        self.throttled_level(steps).power
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rtx2080_table_shape() {
        let t = GpuFreqTable::rtx2080();
        assert_eq!(t.levels().len(), 26);
        assert!((t.min_power().get() - 100.0).abs() < 1.0);
        assert!((t.max_power().get() - 215.0).abs() < 1.0);
    }

    #[test]
    fn budget_selects_fastest_fitting_level() {
        let t = GpuFreqTable::rtx2080();
        let full = t.level_for_budget(Watts(215.0)).unwrap();
        assert!((full.freq_mhz - 1900.0).abs() < 1e-9);
        let mid = t.level_for_budget(Watts(150.0)).unwrap();
        assert!(mid.freq_mhz < 1900.0 && mid.freq_mhz > 300.0);
        assert!(mid.power <= Watts(150.0));
        // Budget below the slowest level is infeasible.
        assert!(t.level_for_budget(Watts(50.0)).is_err());
    }

    #[test]
    fn budget_monotone_in_frequency() {
        let t = GpuFreqTable::rtx2080();
        let mut prev = 0.0;
        for b in [100.0, 120.0, 140.0, 160.0, 180.0, 200.0, 215.0] {
            let l = t.level_for_budget(Watts(b)).unwrap();
            assert!(l.freq_mhz >= prev);
            prev = l.freq_mhz;
        }
    }

    #[test]
    fn throughput_bounded_and_monotone() {
        let t = GpuFreqTable::rtx2080();
        let mut prev = 0.0;
        for b in [100.0, 130.0, 160.0, 190.0, 215.0] {
            let s = t.throughput(Watts(b), 0.45).unwrap();
            assert!(s > 0.0 && s <= 1.0);
            assert!(s >= prev);
            prev = s;
        }
        assert!((t.throughput(Watts(215.0), 0.45).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_settings_match_levels() {
        let t = GpuFreqTable::rtx2080();
        assert_eq!(t.power_settings().len(), t.levels().len());
    }

    #[test]
    fn rejects_tiny_and_empty_tables_typed() {
        // Regression: degenerate level vectors must surface as typed
        // errors, never panic.
        let err = GpuFreqTable::new(vec![]).unwrap_err();
        assert_eq!(err, PowerError::TableTooSmall { len: 0 });
        let err = GpuFreqTable::new(vec![GpuLevel {
            freq_mhz: 300.0,
            power: Watts(100.0),
        }])
        .unwrap_err();
        assert_eq!(err, PowerError::TableTooSmall { len: 1 });
    }

    #[test]
    fn rejects_unsorted_tables_typed() {
        // Regression: an unsorted table must name the offending level,
        // never panic or silently accept.
        let err = GpuFreqTable::new(vec![
            GpuLevel {
                freq_mhz: 300.0,
                power: Watts(100.0),
            },
            GpuLevel {
                freq_mhz: 200.0,
                power: Watts(150.0),
            },
        ])
        .unwrap_err();
        assert_eq!(err, PowerError::NonMonotoneLevel { index: 1 });
        // Monotone frequency but dipping power is just as invalid.
        let err = GpuFreqTable::new(vec![
            GpuLevel {
                freq_mhz: 300.0,
                power: Watts(100.0),
            },
            GpuLevel {
                freq_mhz: 400.0,
                power: Watts(120.0),
            },
            GpuLevel {
                freq_mhz: 500.0,
                power: Watts(110.0),
            },
        ])
        .unwrap_err();
        assert_eq!(err, PowerError::NonMonotoneLevel { index: 2 });
    }

    #[test]
    fn budget_below_min_power_is_typed_not_clamped() {
        // Regression: a budget below the slowest level must return the
        // typed range error, not clamp to the slowest level.
        let t = GpuFreqTable::rtx2080();
        let err = t.level_for_budget(Watts(50.0)).unwrap_err();
        assert!(
            matches!(err, PowerError::CapOutOfRange { requested, .. } if requested == Watts(50.0)),
            "{err:?}"
        );
        let err = t.throughput(Watts(50.0), 0.45).unwrap_err();
        assert!(matches!(err, PowerError::CapOutOfRange { .. }), "{err:?}");
    }

    #[test]
    fn invalid_floor_is_typed() {
        let t = GpuFreqTable::rtx2080();
        for bad in [0.0, -0.2, 1.5, f64::NAN] {
            let err = t.throughput(Watts(200.0), bad).unwrap_err();
            assert!(matches!(err, PowerError::InvalidFloor(_)), "{bad}: {err:?}");
        }
    }

    #[test]
    fn throttle_steps_walk_down_the_table() {
        let t = GpuFreqTable::rtx2080();
        assert_eq!(t.throttle_steps(), 25);
        assert_eq!(t.throttled_power(0), t.max_power());
        let mut prev = t.throttled_power(0);
        for s in 1..=t.throttle_steps() {
            let p = t.throttled_power(s);
            assert!(p < prev, "throttle step {s} must reduce power");
            prev = p;
        }
        assert_eq!(t.throttled_power(t.throttle_steps()), t.min_power());
        // Deeper throttles than the table holds saturate at the slowest
        // level instead of panicking.
        assert_eq!(t.throttled_power(usize::MAX), t.min_power());
    }
}
