//! The four evaluation platforms and the latency/power glue.
//!
//! Paper Table 1 lists the hardware: an ARM Cortex A-15 embedded board,
//! a Core i7 laptop (CPU1), a Xeon Gold 6126 server (CPU2), and an RTX
//! 2080 (GPU). [`Platform`] carries everything the simulator needs to
//! realize an inference on one of them:
//!
//! * the feasible power-cap series (paper §4),
//! * the cap→throughput response ([`ThroughputCurve`] for CPUs, the
//!   [`GpuFreqTable`] for the GPU),
//! * idle and maximum power draws,
//! * per-workload-class speed relative to the CPU2 reference (model
//!   profiles are stated at CPU2 @ max cap),
//! * memory capacity (the embedded board OOMs on everything except the
//!   small RNN — paper Fig. 4 footnote),
//! * baseline measurement noise and per-contention-kind models.

use crate::contention::{ContentionKind, ContentionModel};
use crate::error::PowerError;
use crate::freq::ThroughputCurve;
use crate::gpu::GpuFreqTable;
use crate::power::CapRange;
use alert_stats::units::{Seconds, Watts};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How a kernel maps onto hardware; decides which cross-platform speed
/// factor and which frequency sensitivity applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Convolutional networks (image classification).
    Cnn,
    /// Recurrent networks (sentence prediction). Poorly suited to GPUs
    /// (paper §5.1 runs NLP on CPUs only, citing DeepCPU [90]).
    Rnn,
    /// Attention/transformer models (question answering).
    Transformer,
}

impl WorkloadClass {
    const COUNT: usize = 3;

    fn index(self) -> usize {
        match self {
            WorkloadClass::Cnn => 0,
            WorkloadClass::Rnn => 1,
            WorkloadClass::Transformer => 2,
        }
    }
}

/// Baseline (no-contention) latency noise: small lognormal jitter plus
/// rare outliers (paper §2.2: "outlier inputs exist but are rare").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseParams {
    /// σ of the lognormal jitter.
    pub sigma: f64,
    /// Per-inference probability of an outlier.
    pub outlier_prob: f64,
    /// Outlier multiplier upper bound (uniform in `[1.3, max]`).
    pub outlier_scale_max: f64,
}

/// Pre-drawn random primitives of one inference's baseline noise (the
/// analogue of [`crate::contention::ContentionDraws`] for the
/// no-contention jitter).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseDraws {
    /// Standard normal draw for the lognormal jitter.
    pub z: f64,
    /// Uniform draw in `[0, 1)` deciding whether this input is an outlier.
    pub outlier_u: f64,
    /// Uniform draw in `[0, 1)` positioning the outlier multiplier.
    pub outlier_v: f64,
}

impl NoiseDraws {
    /// Draws the primitives from an RNG.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        NoiseDraws {
            z,
            outlier_u: rng.gen_range(0.0..1.0),
            outlier_v: rng.gen_range(0.0..1.0),
        }
    }
}

impl NoiseParams {
    /// Samples a multiplicative noise factor ≥ a small positive floor.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.factor_from_draws(&NoiseDraws::sample(rng))
    }

    /// Maps pre-drawn primitives to the noise factor (deterministic).
    pub fn factor_from_draws(&self, draws: &NoiseDraws) -> f64 {
        let mut f = (draws.z * self.sigma).exp();
        if self.outlier_prob > 0.0 && draws.outlier_u < self.outlier_prob {
            let hi = self.outlier_scale_max.max(1.3);
            f *= 1.3 + draws.outlier_v * (hi - 1.3);
        }
        f.max(0.5)
    }
}

/// Identifier of one of the paper's four platforms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PlatformId {
    /// ARM Cortex A-15 @ 2.0 GHz, 2 GB DDR3.
    Embedded,
    /// Core i7 @ 2.2 GHz laptop, 16 GB DDR4.
    Cpu1,
    /// Xeon Gold 6126 @ 2.6 GHz server, 192 GB DDR4.
    Cpu2,
    /// RTX 2080 attached to the laptop-class host.
    Gpu,
}

impl std::fmt::Display for PlatformId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformId::Embedded => write!(f, "Embedded"),
            PlatformId::Cpu1 => write!(f, "CPU1"),
            PlatformId::Cpu2 => write!(f, "CPU2"),
            PlatformId::Gpu => write!(f, "GPU"),
        }
    }
}

/// The cap→throughput backend: a continuous curve for CPUs, a discrete
/// frequency table for the GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FreqResponse {
    /// Continuous floored-logistic response (CPU DVFS under RAPL).
    Curve(ThroughputCurve),
    /// Discrete clock levels (GPU); `floor` is the memory-bound throughput
    /// retained at the lowest clock.
    Table {
        /// The frequency/power lookup table.
        table: GpuFreqTable,
        /// Memory-bound throughput floor in `(0, 1]`.
        floor: f64,
    },
}

/// Static description + behaviour of one platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Which platform this is.
    pub id: PlatformId,
    /// Human-readable name (Table 1 row).
    pub name: String,
    /// Feasible power-cap series.
    pub caps: CapRange,
    /// Cap→throughput response.
    pub response: FreqResponse,
    /// Maximum power the package can actually draw under this workload;
    /// caps above this buy nothing.
    pub max_draw: Watts,
    /// Power drawn when the inference pipeline idles and no co-runner is
    /// active.
    pub idle_base: Watts,
    /// Per-[`WorkloadClass`] latency multiplier relative to CPU2 @ max cap.
    pub class_speed: [f64; WorkloadClass::COUNT],
    /// Usable memory for model weights + activations, in GB.
    pub mem_capacity_gb: f64,
    /// Baseline latency noise.
    pub noise: NoiseParams,
    /// Contention behaviour when a memory-intensive co-runner is active.
    pub memory_contention: ContentionModel,
    /// Contention behaviour when a compute-intensive co-runner is active.
    pub compute_contention: ContentionModel,
}

/// A platform instance (today a thin wrapper over the spec; kept distinct
/// so mutable runtime state can be added without breaking the API).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    spec: PlatformSpec,
}

impl Platform {
    /// Wraps a spec.
    pub fn new(spec: PlatformSpec) -> Self {
        Platform { spec }
    }

    /// The ARM embedded board.
    pub fn embedded() -> Self {
        Platform::new(PlatformSpec {
            id: PlatformId::Embedded,
            name: "ARM Cortex A-15 @2.0GHz, 2GB DDR3".to_string(),
            caps: CapRange::new(Watts(3.0), Watts(7.0), Watts(0.5)),
            response: FreqResponse::Curve(ThroughputCurve::new(0.35, 4.8, 0.8, 7.0)),
            max_draw: Watts(6.5),
            idle_base: Watts(0.8),
            class_speed: [16.0, 11.0, 18.0],
            mem_capacity_gb: 0.4,
            noise: NoiseParams {
                sigma: 0.015,
                outlier_prob: 0.003,
                outlier_scale_max: 2.5,
            },
            memory_contention: ContentionModel {
                boost: 0.80,
                sigma: 0.15,
                tail_prob: 0.010,
                tail_range: (1.5, 3.0),
                idle_draw_extra: Watts(0.6),
            },
            compute_contention: ContentionModel {
                boost: 0.60,
                sigma: 0.10,
                tail_prob: 0.006,
                tail_range: (1.4, 2.2),
                idle_draw_extra: Watts(0.7),
            },
        })
    }

    /// The Core i7 laptop (CPU1).
    pub fn cpu1() -> Self {
        Platform::new(PlatformSpec {
            id: PlatformId::Cpu1,
            name: "Core i7 @2.2GHz, 16GB DDR4".to_string(),
            caps: CapRange::new(Watts(10.0), Watts(45.0), Watts(2.5)),
            response: FreqResponse::Curve(ThroughputCurve::new(0.32, 26.0, 5.5, 45.0)),
            max_draw: Watts(42.0),
            idle_base: Watts(4.0),
            class_speed: [2.2, 1.2, 2.0],
            mem_capacity_gb: 16.0,
            noise: NoiseParams {
                sigma: 0.012,
                outlier_prob: 0.002,
                outlier_scale_max: 2.5,
            },
            memory_contention: ContentionModel {
                boost: 0.85,
                sigma: 0.16,
                tail_prob: 0.010,
                tail_range: (1.5, 3.2),
                idle_draw_extra: Watts(5.0),
            },
            compute_contention: ContentionModel {
                boost: 0.55,
                sigma: 0.11,
                tail_prob: 0.006,
                tail_range: (1.4, 2.4),
                idle_draw_extra: Watts(6.0),
            },
        })
    }

    /// The Xeon Gold server (CPU2) — the profiling reference platform.
    pub fn cpu2() -> Self {
        Platform::new(PlatformSpec {
            id: PlatformId::Cpu2,
            name: "Xeon Gold 6126 @2.60GHz, 192GB DDR4".to_string(),
            caps: CapRange::new(Watts(40.0), Watts(100.0), Watts(5.0)),
            response: FreqResponse::Curve(ThroughputCurve::new(0.30, 78.0, 8.0, 100.0)),
            max_draw: Watts(95.0),
            idle_base: Watts(18.0),
            class_speed: [1.0, 1.0, 1.0],
            mem_capacity_gb: 192.0,
            noise: NoiseParams {
                sigma: 0.010,
                outlier_prob: 0.002,
                outlier_scale_max: 2.2,
            },
            memory_contention: ContentionModel {
                boost: 0.75,
                sigma: 0.14,
                tail_prob: 0.008,
                tail_range: (1.5, 3.0),
                idle_draw_extra: Watts(12.0),
            },
            compute_contention: ContentionModel {
                boost: 0.50,
                sigma: 0.10,
                tail_prob: 0.006,
                tail_range: (1.4, 2.2),
                idle_draw_extra: Watts(14.0),
            },
        })
    }

    /// The RTX 2080 GPU platform.
    pub fn gpu() -> Self {
        let table = GpuFreqTable::rtx2080();
        let caps = CapRange::new(table.min_power(), table.max_power(), Watts(5.0));
        Platform::new(PlatformSpec {
            id: PlatformId::Gpu,
            name: "RTX 2080 + Core i7 host".to_string(),
            caps,
            response: FreqResponse::Table { table, floor: 0.30 },
            max_draw: Watts(215.0),
            idle_base: Watts(52.0),
            class_speed: [0.12, 0.90, 0.15],
            mem_capacity_gb: 8.0,
            noise: NoiseParams {
                sigma: 0.006,
                outlier_prob: 0.001,
                outlier_scale_max: 1.8,
            },
            memory_contention: ContentionModel {
                boost: 0.30,
                sigma: 0.05,
                tail_prob: 0.004,
                tail_range: (1.2, 1.6),
                idle_draw_extra: Watts(25.0),
            },
            compute_contention: ContentionModel {
                boost: 0.35,
                sigma: 0.06,
                tail_prob: 0.005,
                tail_range: (1.2, 1.8),
                idle_draw_extra: Watts(30.0),
            },
        })
    }

    /// Every platform in Table 1 order.
    pub fn all() -> Vec<Platform> {
        vec![
            Platform::embedded(),
            Platform::cpu1(),
            Platform::cpu2(),
            Platform::gpu(),
        ]
    }

    /// Looks a platform up by id.
    pub fn by_id(id: PlatformId) -> Platform {
        match id {
            PlatformId::Embedded => Platform::embedded(),
            PlatformId::Cpu1 => Platform::cpu1(),
            PlatformId::Cpu2 => Platform::cpu2(),
            PlatformId::Gpu => Platform::gpu(),
        }
    }

    /// The underlying spec.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }

    /// The platform id.
    pub fn id(&self) -> PlatformId {
        self.spec.id
    }

    /// The candidate power settings P = {pⱼ} handed to schedulers: the cap
    /// series for CPUs, the table levels for the GPU.
    pub fn power_settings(&self) -> Vec<Watts> {
        match &self.spec.response {
            FreqResponse::Curve(_) => self.spec.caps.settings(),
            FreqResponse::Table { table, .. } => table.power_settings(),
        }
    }

    /// The feasible cap range.
    pub fn cap_range(&self) -> CapRange {
        self.spec.caps
    }

    /// Normalized throughput σ(cap) ∈ (0, 1].
    pub fn throughput(&self, cap: Watts) -> Result<f64, PowerError> {
        match &self.spec.response {
            FreqResponse::Curve(c) => {
                self.spec.caps.validate(cap)?;
                Ok(c.throughput(cap.get()))
            }
            FreqResponse::Table { table, floor } => table.throughput(cap, *floor),
        }
    }

    /// Profiled inference latency of a kernel on this platform at `cap`:
    /// `t_ref(CPU2 @ max) × class_speed × (ρ/σ(cap) + 1 − ρ)`.
    ///
    /// This is the `t^prof_{i,j}` the controller's tables are built from.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]` — the memory-intensity ratio
    /// is a profiled constant per workload class, so an out-of-range
    /// value is a caller bug, not a runtime condition.
    pub fn profile_latency(
        &self,
        ref_latency: Seconds,
        class: WorkloadClass,
        rho: f64,
        cap: Watts,
    ) -> Result<Seconds, PowerError> {
        assert!((0.0..=1.0).contains(&rho), "rho must be in [0,1]");
        let sigma = self.throughput(cap)?;
        let slowdown = rho / sigma + (1.0 - rho);
        Ok(ref_latency * self.spec.class_speed[class.index()] * slowdown)
    }

    /// Power drawn while the inference runs at `cap` (RAPL holds the
    /// package at the cap, but the package cannot draw more than
    /// `max_draw`).
    pub fn run_draw(&self, cap: Watts) -> Watts {
        cap.min(self.spec.max_draw)
    }

    /// Power drawn while the inference pipeline idles. A co-located job
    /// keeps burning power, which is why ALERT tracks the idle ratio
    /// online (Eq. 8).
    pub fn idle_draw(&self, cap: Watts, contention: Option<ContentionKind>) -> Watts {
        let base = match contention {
            None => self.spec.idle_base,
            Some(k) => self.spec.idle_base + self.contention_model(k).idle_draw_extra,
        };
        base.min(cap)
    }

    /// The contention model for a co-runner kind.
    pub fn contention_model(&self, kind: ContentionKind) -> &ContentionModel {
        match kind {
            ContentionKind::Memory => &self.spec.memory_contention,
            ContentionKind::Compute => &self.spec.compute_contention,
        }
    }

    /// Baseline noise parameters.
    pub fn noise(&self) -> &NoiseParams {
        &self.spec.noise
    }

    /// Whether a model with the given memory footprint fits.
    pub fn supports_footprint(&self, footprint_gb: f64) -> bool {
        footprint_gb <= self.spec.mem_capacity_gb
    }

    /// The default system setting (uncapped), used by the App-only
    /// baseline.
    pub fn default_cap(&self) -> Watts {
        self.spec.caps.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_bucket_counts() {
        // Paper §4: 2.5 W interval on the laptop, 5 W on server; GPU uses
        // the frequency table levels.
        assert_eq!(Platform::cpu1().power_settings().len(), 15);
        assert_eq!(Platform::cpu2().power_settings().len(), 13);
        assert_eq!(Platform::gpu().power_settings().len(), 26);
        assert_eq!(Platform::embedded().power_settings().len(), 9);
    }

    #[test]
    fn throughput_monotone_per_platform() {
        for p in Platform::all() {
            let mut prev = 0.0;
            for cap in p.power_settings() {
                let s = p.throughput(cap).unwrap();
                assert!(s >= prev, "{:?} throughput dipped at {cap}", p.id());
                assert!(s > 0.0 && s <= 1.0);
                prev = s;
            }
        }
    }

    #[test]
    fn profile_latency_at_max_cap_is_reference_on_cpu2() {
        let p = Platform::cpu2();
        let t = p
            .profile_latency(Seconds(0.1), WorkloadClass::Cnn, 0.85, Watts(100.0))
            .unwrap();
        assert!((t.get() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gpu_is_faster_for_cnn_slower_for_rnn() {
        let gpu = Platform::gpu();
        let cpu2 = Platform::cpu2();
        let cnn_gpu = gpu
            .profile_latency(Seconds(0.1), WorkloadClass::Cnn, 0.85, gpu.default_cap())
            .unwrap();
        let cnn_cpu = cpu2
            .profile_latency(Seconds(0.1), WorkloadClass::Cnn, 0.85, cpu2.default_cap())
            .unwrap();
        assert!(cnn_gpu.get() < cnn_cpu.get() / 4.0);
        let rnn_gpu = gpu
            .profile_latency(Seconds(0.1), WorkloadClass::Rnn, 0.55, gpu.default_cap())
            .unwrap();
        // RNN barely benefits from the GPU.
        assert!(rnn_gpu.get() > cnn_gpu.get() * 2.0);
    }

    #[test]
    fn embedded_cannot_fit_large_models() {
        let e = Platform::embedded();
        assert!(e.supports_footprint(0.2)); // small RNN
        assert!(!e.supports_footprint(0.8)); // ResNet50
        assert!(!e.supports_footprint(1.6)); // VGG16
        assert!(Platform::cpu1().supports_footprint(1.6));
    }

    #[test]
    fn run_draw_saturates_at_max_draw() {
        let p = Platform::cpu2();
        assert_eq!(p.run_draw(Watts(60.0)), Watts(60.0));
        assert_eq!(p.run_draw(Watts(100.0)), Watts(95.0));
    }

    #[test]
    fn idle_draw_rises_under_contention_and_respects_cap() {
        let p = Platform::cpu2();
        let quiet = p.idle_draw(Watts(100.0), None);
        let noisy = p.idle_draw(Watts(100.0), Some(ContentionKind::Memory));
        assert!(noisy > quiet);
        // The cap bounds the idle draw too (the co-runner lives in the same
        // RAPL domain).
        let capped = p.idle_draw(Watts(20.0), Some(ContentionKind::Memory));
        assert!(capped <= Watts(20.0));
    }

    #[test]
    fn invalid_cap_is_rejected() {
        let p = Platform::cpu2();
        assert!(p.throughput(Watts(30.0)).is_err());
        assert!(p
            .profile_latency(Seconds(0.1), WorkloadClass::Cnn, 0.8, Watts(300.0))
            .is_err());
    }

    #[test]
    fn latency_span_exceeds_two_on_cpus() {
        // Paper §2.1: the fastest setting is more than 2x the slowest.
        for p in [Platform::cpu1(), Platform::cpu2()] {
            let caps = p.power_settings();
            let lo = p
                .profile_latency(Seconds(0.1), WorkloadClass::Cnn, 0.85, caps[0])
                .unwrap();
            let hi = p
                .profile_latency(
                    Seconds(0.1),
                    WorkloadClass::Cnn,
                    0.85,
                    *caps.last().unwrap(),
                )
                .unwrap();
            assert!(lo.get() / hi.get() > 2.0, "{:?} span too small", p.id());
        }
    }

    #[test]
    fn by_id_roundtrip() {
        for p in Platform::all() {
            assert_eq!(Platform::by_id(p.id()).id(), p.id());
        }
    }

    #[test]
    fn noise_factor_is_positive_and_near_one() {
        let p = Platform::cpu2();
        let mut rng = alert_stats::rng::stream_rng(9, "noise");
        let mut sum = 0.0;
        for _ in 0..5000 {
            let f = p.noise().sample(&mut rng);
            assert!(f > 0.0);
            sum += f;
        }
        let mean = sum / 5000.0;
        assert!((mean - 1.0).abs() < 0.05, "mean noise = {mean}");
    }
}
