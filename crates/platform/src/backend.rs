//! The device abstraction behind heterogeneous placement.
//!
//! Paper Table 3 evaluates ALERT on CPU *and* GPU setups; a fleet node
//! serves both at once. [`Backend`] is the narrow surface a scheduler
//! needs from a device to enumerate its DVFS axis: an identity, the
//! discrete power levels (RAPL cap series on CPUs, clock-table levels on
//! the GPU), the feasible power extremes, and which co-runner contention
//! kinds can hit it. Both the [`Platform`](crate::platform::Platform)
//! presets and the raw [`GpuFreqTable`](crate::gpu::GpuFreqTable)
//! implement it, so the core layer can treat "a device" uniformly.
//!
//! [`split_budget`] is the shared-budget rule: one node-level `Watts`
//! budget is divided across backends proportionally to each backend's
//! maximum useful draw, floored at its minimum feasible level so no
//! device is starved below its slowest operating point.

use crate::contention::ContentionKind;
use crate::gpu::GpuFreqTable;
use crate::platform::{FreqResponse, Platform, PlatformId};
use alert_stats::units::Watts;

/// A schedulable device: the knobs the config space needs.
pub trait Backend {
    /// Which platform this device is.
    fn backend_id(&self) -> PlatformId;

    /// The discrete power levels the device can be held at, slowest
    /// first (the cap series for CPUs, the clock-table levels for GPUs).
    fn power_levels(&self) -> Vec<Watts>;

    /// The slowest level's power — the minimum feasible share of a
    /// split budget.
    fn min_power(&self) -> Watts;

    /// The fastest level's power — caps above this buy nothing.
    fn max_power(&self) -> Watts;

    /// Which co-runner contention kinds can disturb this device.
    fn contention_kinds(&self) -> &'static [ContentionKind];
}

impl Backend for Platform {
    fn backend_id(&self) -> PlatformId {
        self.id()
    }

    fn power_levels(&self) -> Vec<Watts> {
        self.power_settings()
    }

    fn min_power(&self) -> Watts {
        self.cap_range().min()
    }

    fn max_power(&self) -> Watts {
        self.cap_range().max()
    }

    fn contention_kinds(&self) -> &'static [ContentionKind] {
        match self.spec().response {
            // CPUs share the socket with STREAM/Bodytrack co-runners.
            FreqResponse::Curve(_) => &[ContentionKind::Memory, ContentionKind::Compute],
            // The GPU's co-runner is Rodinia Backprop (paper §4) — a
            // compute kernel; host memory traffic barely touches it.
            FreqResponse::Table { .. } => &[ContentionKind::Compute],
        }
    }
}

impl Backend for GpuFreqTable {
    fn backend_id(&self) -> PlatformId {
        PlatformId::Gpu
    }

    fn power_levels(&self) -> Vec<Watts> {
        self.power_settings()
    }

    fn min_power(&self) -> Watts {
        GpuFreqTable::min_power(self)
    }

    fn max_power(&self) -> Watts {
        GpuFreqTable::max_power(self)
    }

    fn contention_kinds(&self) -> &'static [ContentionKind] {
        &[ContentionKind::Compute]
    }
}

/// Splits one node-level budget across backends proportionally to each
/// backend's maximum useful draw, then floors every share at that
/// backend's minimum feasible level.
///
/// The proportional rule keeps a single-backend split equal to the whole
/// budget (CPU-only configurations are bit-compatible with the
/// pre-placement code path), and the floor guarantees every device can
/// at least run its slowest level — the same "never pick an infeasible
/// setting" discipline the §4 fallback hierarchy applies to caps.
pub fn split_budget(total: Watts, backends: &[&dyn Backend]) -> Vec<Watts> {
    let sum_max: f64 = backends.iter().map(|b| b.max_power().get()).sum();
    backends
        .iter()
        .map(|b| {
            let share = if sum_max > 0.0 {
                Watts(total.get() * b.max_power().get() / sum_max)
            } else {
                total
            };
            share.max(b.min_power())
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_and_table_agree_on_gpu_levels() {
        let p = Platform::gpu();
        let t = GpuFreqTable::rtx2080();
        assert_eq!(Backend::power_levels(&p), Backend::power_levels(&t));
        assert_eq!(Backend::backend_id(&t), PlatformId::Gpu);
        assert_eq!(Backend::min_power(&t), t.levels()[0].power);
    }

    #[test]
    fn contention_kinds_differ_by_device_class() {
        assert_eq!(Platform::cpu2().contention_kinds().len(), 2);
        assert_eq!(
            Platform::gpu().contention_kinds(),
            &[ContentionKind::Compute]
        );
    }

    #[test]
    fn single_backend_split_is_the_whole_budget() {
        let cpu = Platform::cpu1();
        let shares = split_budget(Watts(45.0), &[&cpu]);
        assert_eq!(shares, vec![Watts(45.0)]);
    }

    #[test]
    fn split_is_proportional_to_max_power() {
        let cpu = Platform::cpu1(); // max 45 W
        let gpu = Platform::gpu(); // max 215 W
        let total = Watts(195.0);
        let shares = split_budget(total, &[&cpu, &gpu]);
        assert_eq!(shares.len(), 2);
        let expected_cpu = 195.0 * 45.0 / (45.0 + 215.0);
        assert!((shares[0].get() - expected_cpu).abs() < 1e-9);
        // Proportionality: shares sum to the total when no floor binds.
        assert!((shares[0].get() + shares[1].get() - 195.0).abs() < 1e-9);
    }

    #[test]
    fn split_floors_at_min_power() {
        let cpu = Platform::cpu1(); // min 10 W
        let gpu = Platform::gpu(); // min 100 W
                                   // A tight budget would give the GPU less than its slowest level;
                                   // the floor lifts it back so the device stays operable.
        let shares = split_budget(Watts(60.0), &[&cpu, &gpu]);
        assert!(shares[0] >= Backend::min_power(&cpu));
        assert!(shares[1] >= Backend::min_power(&gpu));
    }
}
