//! Co-located job (contention) processes.
//!
//! The paper's dynamic environments co-locate the inference task with a
//! memory-intensive job (STREAM on CPUs, Rodinia Backprop on the GPU) or a
//! compute-intensive job (PARSEC Bodytrack on CPUs, Backprop's forward pass
//! on the GPU) "that repeatedly gets stopped and then started" (§5.1).
//!
//! Two orthogonal pieces model this:
//!
//! * [`PhaseSchedule`] / [`ContentionProcess`] — *when* the co-runner is
//!   active: never, always, scripted windows (paper Fig. 9 uses a window
//!   over inputs ~46–119), or random on/off phases.
//! * [`ContentionModel`] — *what it does when active*: a multiplicative
//!   latency factor with a per-workload sensitivity, lognormal jitter and a
//!   fat tail (paper Fig. 5 shows both the median and the tail rising), and
//!   extra idle power draw (the co-runner keeps consuming while the DNN
//!   pipeline idles — the reason ALERT must track the idle-power ratio φ
//!   online, Eq. 8).

use alert_stats::rng::stream_rng;
use alert_stats::units::{Seconds, Watts};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The kind of co-located job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ContentionKind {
    /// Memory-bandwidth-intensive co-runner (STREAM / Backprop).
    Memory,
    /// Compute-intensive co-runner (Bodytrack / Backprop forward pass).
    Compute,
}

impl ContentionKind {
    /// All kinds, for sweep drivers.
    pub const ALL: [ContentionKind; 2] = [ContentionKind::Memory, ContentionKind::Compute];
}

impl std::fmt::Display for ContentionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContentionKind::Memory => write!(f, "Memory"),
            ContentionKind::Compute => write!(f, "Compute"),
        }
    }
}

/// When the co-runner is active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhaseSchedule {
    /// No co-runner at all (the paper's "Default" environment).
    Never,
    /// Co-runner active for the whole episode.
    Always,
    /// Active inside the listed `[start, end)` windows (seconds).
    Windows(Vec<(Seconds, Seconds)>),
    /// Random alternation: on-durations uniform in `on`, off-durations
    /// uniform in `off`, starting inactive.
    Random {
        /// Uniform range of on-phase durations.
        on: (Seconds, Seconds),
        /// Uniform range of off-phase durations.
        off: (Seconds, Seconds),
        /// Seed for the phase stream (independent of everything else).
        seed: u64,
    },
}

/// A stateful process answering "is the co-runner active at time t?".
///
/// Queries must be monotonically non-decreasing in `t` (simulation time
/// only moves forward); this is asserted in debug builds.
#[derive(Debug, Clone)]
pub struct ContentionProcess {
    schedule: PhaseSchedule,
    /// RNG for `Random` schedules.
    rng: Option<StdRng>,
    /// Current phase for `Random`: (active?, phase end time).
    phase: (bool, Seconds),
    last_query: Seconds,
}

impl ContentionProcess {
    /// Creates a process from a schedule.
    pub fn new(schedule: PhaseSchedule) -> Self {
        let rng = match &schedule {
            PhaseSchedule::Random { seed, .. } => Some(stream_rng(*seed, "contention-phase")),
            _ => None,
        };
        ContentionProcess {
            schedule,
            rng,
            // Seed the alternation as "active phase just ended at t=0" so
            // the first drawn phase is an *off* phase (episodes start calm).
            phase: (true, Seconds::ZERO),
            last_query: Seconds(f64::NEG_INFINITY),
        }
    }

    /// Returns whether the co-runner is active at time `t`.
    ///
    /// # Panics
    ///
    /// Debug-panics if `t` moves backwards.
    pub fn active_at(&mut self, t: Seconds) -> bool {
        debug_assert!(
            t >= self.last_query,
            "contention queries must be monotone: {t} after {}",
            self.last_query
        );
        self.last_query = t;
        match &self.schedule {
            PhaseSchedule::Never => false,
            PhaseSchedule::Always => true,
            PhaseSchedule::Windows(ws) => ws.iter().any(|&(s, e)| t >= s && t < e),
            PhaseSchedule::Random { on, off, .. } => {
                let (on, off) = (*on, *off);
                // lint:allow(no-panic): constructors pair every Random schedule with an rng; the split fields are a construction invariant
                let rng = self.rng.as_mut().expect("random schedule has rng");
                while t >= self.phase.1 {
                    let (was_active, end) = self.phase;
                    let now_active = !was_active;
                    let (lo, hi) = if now_active { on } else { off };
                    let dur = rng.gen_range(lo.get()..=hi.get());
                    self.phase = (now_active, end + Seconds(dur));
                }
                self.phase.0
            }
        }
    }

    /// The schedule this process follows.
    pub fn schedule(&self) -> &PhaseSchedule {
        &self.schedule
    }
}

/// What an active co-runner does to the inference workload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionModel {
    /// Mean latency inflation at sensitivity 1: factor = 1 + boost·sens.
    pub boost: f64,
    /// Lognormal jitter scale (σ of the underlying normal) at sensitivity 1.
    pub sigma: f64,
    /// Probability of a tail event per inference.
    pub tail_prob: f64,
    /// Tail multiplier range (uniform).
    pub tail_range: (f64, f64),
    /// Extra power the co-runner draws while the inference pipeline idles.
    pub idle_draw_extra: Watts,
}

/// The pre-drawn random primitives of one inference's contention effect.
///
/// Splitting the draw from the model-dependent mapping lets oracle
/// schedulers evaluate *counterfactual* models against the identical
/// randomness the real execution will see.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentionDraws {
    /// Standard normal draw for the lognormal jitter.
    pub z: f64,
    /// Uniform draw in `[0, 1)` deciding whether a tail event occurs.
    pub tail_u: f64,
    /// Uniform draw in `[0, 1)` positioning the tail multiplier.
    pub tail_v: f64,
}

impl ContentionDraws {
    /// Draws the primitives from an RNG.
    pub fn sample<R: Rng>(rng: &mut R) -> Self {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        ContentionDraws {
            z,
            tail_u: rng.gen_range(0.0..1.0),
            tail_v: rng.gen_range(0.0..1.0),
        }
    }
}

impl ContentionModel {
    /// Samples the latency inflation factor for one inference.
    ///
    /// `sensitivity` ∈ [0, 1] is how exposed the workload is to this kind
    /// of contention (memory intensity for [`ContentionKind::Memory`],
    /// compute-bound fraction for [`ContentionKind::Compute`]).
    ///
    /// The returned factor is always ≥ 1: a co-runner never speeds the
    /// inference up.
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is outside `[0, 1]`.
    pub fn sample_factor<R: Rng>(&self, rng: &mut R, sensitivity: f64) -> f64 {
        self.factor_from_draws(&ContentionDraws::sample(rng), sensitivity)
    }

    /// Maps pre-drawn primitives to the inflation factor (deterministic;
    /// see [`ContentionDraws`]).
    ///
    /// # Panics
    ///
    /// Panics if `sensitivity` is outside `[0, 1]`.
    pub fn factor_from_draws(&self, draws: &ContentionDraws, sensitivity: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&sensitivity),
            "sensitivity must be in [0,1], got {sensitivity}"
        );
        let mean = 1.0 + self.boost * sensitivity;
        let sigma = self.sigma * (0.4 + 0.6 * sensitivity);
        let jitter = (draws.z * sigma).exp();
        let mut factor = mean * jitter;
        if draws.tail_u < self.tail_prob {
            factor *= self.tail_range.0 + draws.tail_v * (self.tail_range.1 - self.tail_range.0);
        }
        factor.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_and_always() {
        let mut never = ContentionProcess::new(PhaseSchedule::Never);
        let mut always = ContentionProcess::new(PhaseSchedule::Always);
        for i in 0..10 {
            let t = Seconds(i as f64);
            assert!(!never.active_at(t));
            assert!(always.active_at(t));
        }
    }

    #[test]
    fn windows_schedule() {
        let mut p = ContentionProcess::new(PhaseSchedule::Windows(vec![
            (Seconds(1.0), Seconds(2.0)),
            (Seconds(5.0), Seconds(6.0)),
        ]));
        assert!(!p.active_at(Seconds(0.5)));
        assert!(p.active_at(Seconds(1.0)));
        assert!(p.active_at(Seconds(1.99)));
        assert!(!p.active_at(Seconds(2.0)));
        assert!(p.active_at(Seconds(5.5)));
        assert!(!p.active_at(Seconds(7.0)));
    }

    #[test]
    fn random_schedule_alternates() {
        let mut p = ContentionProcess::new(PhaseSchedule::Random {
            on: (Seconds(2.0), Seconds(4.0)),
            off: (Seconds(1.0), Seconds(3.0)),
            seed: 42,
        });
        // Starts inactive.
        assert!(!p.active_at(Seconds(0.0)));
        let mut transitions = 0;
        let mut prev = false;
        let mut active_time = 0u32;
        for i in 0..4000 {
            let t = Seconds(i as f64 * 0.05);
            let a = p.active_at(t);
            if a != prev {
                transitions += 1;
                prev = a;
            }
            if a {
                active_time += 1;
            }
        }
        // 200 s of sim: expect dozens of phase flips, and both states seen.
        assert!(transitions > 10, "transitions = {transitions}");
        let frac = f64::from(active_time) / 4000.0;
        assert!(frac > 0.3 && frac < 0.9, "active fraction = {frac}");
    }

    #[test]
    fn random_schedule_is_deterministic() {
        let sample = |seed| {
            let mut p = ContentionProcess::new(PhaseSchedule::Random {
                on: (Seconds(1.0), Seconds(2.0)),
                off: (Seconds(1.0), Seconds(2.0)),
                seed,
            });
            (0..100)
                .map(|i| p.active_at(Seconds(i as f64 * 0.1)))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7));
        assert_ne!(sample(7), sample(8));
    }

    #[test]
    fn factor_at_least_one() {
        let m = ContentionModel {
            boost: 0.8,
            sigma: 0.15,
            tail_prob: 0.05,
            tail_range: (1.5, 3.0),
            idle_draw_extra: Watts(5.0),
        };
        let mut rng = alert_stats::rng::stream_rng(1, "t");
        for _ in 0..2000 {
            let f = m.sample_factor(&mut rng, 0.7);
            assert!(f >= 1.0);
            assert!(f < 20.0);
        }
    }

    #[test]
    fn factor_scales_with_sensitivity() {
        let m = ContentionModel {
            boost: 0.8,
            sigma: 0.1,
            tail_prob: 0.0,
            tail_range: (1.0, 1.0),
            idle_draw_extra: Watts(0.0),
        };
        let mean_at = |s: f64| {
            let mut rng = alert_stats::rng::stream_rng(2, "s");
            (0..5000).map(|_| m.sample_factor(&mut rng, s)).sum::<f64>() / 5000.0
        };
        let low = mean_at(0.2);
        let high = mean_at(0.9);
        assert!(
            high > low + 0.3,
            "high-sensitivity mean {high} should exceed low {low}"
        );
    }

    #[test]
    fn tail_events_fatten_distribution() {
        let base = ContentionModel {
            boost: 0.5,
            sigma: 0.05,
            tail_prob: 0.0,
            tail_range: (2.0, 3.0),
            idle_draw_extra: Watts(0.0),
        };
        let tailed = ContentionModel {
            tail_prob: 0.10,
            ..base
        };
        let p99 = |m: &ContentionModel| {
            let mut rng = alert_stats::rng::stream_rng(3, "tail");
            let mut xs: Vec<f64> = (0..4000).map(|_| m.sample_factor(&mut rng, 0.8)).collect();
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            xs[(0.99 * 4000.0) as usize]
        };
        assert!(p99(&tailed) > p99(&base) * 1.3);
    }

    #[test]
    #[should_panic(expected = "sensitivity must be in [0,1]")]
    fn rejects_bad_sensitivity() {
        let m = ContentionModel {
            boost: 0.5,
            sigma: 0.05,
            tail_prob: 0.0,
            tail_range: (1.0, 1.0),
            idle_draw_extra: Watts(0.0),
        };
        let mut rng = alert_stats::rng::stream_rng(4, "x");
        let _ = m.sample_factor(&mut rng, 1.5);
    }
}
