//! Power-cap ranges and validated cap selection.
//!
//! The paper (§4) considers "a series of power settings within the feasible
//! range with 2.5 W interval on our test laptop and a 5 W interval on our
//! test CPU server and GPU platform. The number of power buckets is
//! configurable." [`CapRange`] is that series.

use crate::error::PowerError;
use alert_stats::units::Watts;
use serde::{Deserialize, Serialize};

/// An inclusive range of feasible power caps with a fixed step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapRange {
    min: Watts,
    max: Watts,
    step: Watts,
}

impl CapRange {
    /// Creates a range.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite, inverted, or the step is not
    /// positive.
    pub fn new(min: Watts, max: Watts, step: Watts) -> Self {
        assert!(min.is_finite() && max.is_finite() && step.is_finite());
        assert!(min.get() > 0.0, "minimum cap must be positive");
        assert!(min <= max, "cap range inverted");
        assert!(step.get() > 0.0, "step must be positive");
        CapRange { min, max, step }
    }

    /// Lowest feasible cap.
    #[inline]
    pub fn min(&self) -> Watts {
        self.min
    }

    /// Highest feasible cap.
    #[inline]
    pub fn max(&self) -> Watts {
        self.max
    }

    /// Step between adjacent settings.
    #[inline]
    pub fn step(&self) -> Watts {
        self.step
    }

    /// Returns `true` if `cap` lies within the feasible range.
    pub fn contains(&self, cap: Watts) -> bool {
        cap >= self.min && cap <= self.max
    }

    /// Validates a cap, returning it unchanged if feasible.
    pub fn validate(&self, cap: Watts) -> Result<Watts, PowerError> {
        if !cap.is_finite() {
            return Err(PowerError::InvalidCap(cap.get()));
        }
        if !self.contains(cap) {
            return Err(PowerError::CapOutOfRange {
                requested: cap,
                min: self.min,
                max: self.max,
            });
        }
        Ok(cap)
    }

    /// Snaps a cap to the nearest bucket (used by the RAPL emulation: real
    /// hardware quantizes the cap register).
    pub fn quantize(&self, cap: Watts) -> Watts {
        let clamped = cap.clamp(self.min, self.max);
        let k = ((clamped - self.min) / self.step).round();
        (self.min + self.step * k).min(self.max)
    }

    /// Enumerates every setting from `min` to `max` inclusive.
    ///
    /// This is the candidate set P = {pⱼ} handed to the controller.
    ///
    /// # Examples
    ///
    /// ```
    /// use alert_platform::power::CapRange;
    /// use alert_stats::units::Watts;
    ///
    /// let r = CapRange::new(Watts(40.0), Watts(100.0), Watts(5.0));
    /// let settings = r.settings();
    /// assert_eq!(settings.len(), 13);
    /// assert_eq!(settings[0], Watts(40.0));
    /// assert_eq!(*settings.last().unwrap(), Watts(100.0));
    /// ```
    pub fn settings(&self) -> Vec<Watts> {
        let mut out = Vec::new();
        let mut k = 0u32;
        loop {
            let cap = self.min + self.step * f64::from(k);
            if cap > self.max + self.step * 1e-9 {
                break;
            }
            out.push(cap.min(self.max));
            k += 1;
            if k > 100_000 {
                // Defensive bound; a cap range with 100k buckets is a bug.
                break;
            }
        }
        // Ensure the max is present even when (max-min) is not a multiple
        // of step.
        if let Some(&last) = out.last() {
            if (self.max - last).get() > 1e-9 {
                out.push(self.max);
            }
        }
        out
    }

    /// Enumerates settings with an explicit step (the paper's Fig. 3 sweep
    /// uses 2 W over the same feasible range).
    pub fn settings_with_step(&self, step: Watts) -> Vec<Watts> {
        CapRange::new(self.min, self.max, step).settings()
    }

    /// Number of buckets in [`CapRange::settings`].
    pub fn bucket_count(&self) -> usize {
        self.settings().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu1() -> CapRange {
        CapRange::new(Watts(10.0), Watts(45.0), Watts(2.5))
    }

    #[test]
    fn settings_enumeration_counts() {
        assert_eq!(cpu1().bucket_count(), 15);
        let cpu2 = CapRange::new(Watts(40.0), Watts(100.0), Watts(5.0));
        assert_eq!(cpu2.bucket_count(), 13);
        // Paper Fig. 3: 31 settings at 2 W over 40–100 W.
        assert_eq!(cpu2.settings_with_step(Watts(2.0)).len(), 31);
    }

    #[test]
    fn settings_cover_extremes() {
        let s = cpu1().settings();
        assert_eq!(s[0], Watts(10.0));
        assert_eq!(*s.last().unwrap(), Watts(45.0));
        for w in s.windows(2) {
            assert!((w[1] - w[0]).get() > 0.0);
        }
    }

    #[test]
    fn non_multiple_range_still_includes_max() {
        let r = CapRange::new(Watts(10.0), Watts(14.0), Watts(3.0));
        let s = r.settings();
        assert_eq!(s, vec![Watts(10.0), Watts(13.0), Watts(14.0)]);
    }

    #[test]
    fn validate_accepts_and_rejects() {
        let r = cpu1();
        assert!(r.validate(Watts(20.0)).is_ok());
        assert!(matches!(
            r.validate(Watts(9.0)),
            Err(PowerError::CapOutOfRange { .. })
        ));
        assert!(matches!(
            r.validate(Watts(f64::NAN)),
            Err(PowerError::InvalidCap(_))
        ));
    }

    #[test]
    fn quantize_snaps_to_buckets() {
        let r = cpu1();
        assert_eq!(r.quantize(Watts(11.2)), Watts(10.0));
        assert_eq!(r.quantize(Watts(11.3)), Watts(12.5));
        assert_eq!(r.quantize(Watts(200.0)), Watts(45.0));
        assert_eq!(r.quantize(Watts(1.0)), Watts(10.0));
    }

    #[test]
    #[should_panic(expected = "cap range inverted")]
    fn rejects_inverted_range() {
        let _ = CapRange::new(Watts(50.0), Watts(40.0), Watts(5.0));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn rejects_zero_step() {
        let _ = CapRange::new(Watts(40.0), Watts(50.0), Watts(0.0));
    }
}
