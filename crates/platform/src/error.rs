//! Error types for the platform substrate.

use alert_stats::units::Watts;
use std::fmt;

/// Errors raised by power-management operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// The requested cap lies outside the platform's feasible range.
    CapOutOfRange {
        /// The cap that was requested.
        requested: Watts,
        /// Lowest supported cap.
        min: Watts,
        /// Highest supported cap.
        max: Watts,
    },
    /// The requested cap is not finite.
    InvalidCap(f64),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::CapOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "power cap {:.1} W outside feasible range [{:.1}, {:.1}] W",
                requested.get(),
                min.get(),
                max.get()
            ),
            PowerError::InvalidCap(v) => write!(f, "power cap {v} is not a finite number"),
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PowerError::CapOutOfRange {
            requested: Watts(150.0),
            min: Watts(40.0),
            max: Watts(100.0),
        };
        let s = e.to_string();
        assert!(s.contains("150.0"));
        assert!(s.contains("[40.0, 100.0]"));
        let e = PowerError::InvalidCap(f64::NAN);
        assert!(e.to_string().contains("not a finite"));
    }
}
