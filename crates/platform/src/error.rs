//! Error types for the platform substrate.

use alert_stats::units::Watts;
use std::fmt;

/// Errors raised by power-management operations.
#[derive(Debug, Clone, PartialEq)]
pub enum PowerError {
    /// The requested cap lies outside the platform's feasible range.
    CapOutOfRange {
        /// The cap that was requested.
        requested: Watts,
        /// Lowest supported cap.
        min: Watts,
        /// Highest supported cap.
        max: Watts,
    },
    /// The requested cap is not finite.
    InvalidCap(f64),
    /// A frequency/power lookup table has too few levels to be usable.
    TableTooSmall {
        /// Number of levels supplied.
        len: usize,
    },
    /// A frequency/power lookup table is not strictly increasing in both
    /// frequency and power at the given level index.
    NonMonotoneLevel {
        /// Index of the first offending level (the higher of the pair).
        index: usize,
    },
    /// A memory-bound throughput floor outside `(0, 1]` was supplied.
    InvalidFloor(f64),
}

impl fmt::Display for PowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerError::CapOutOfRange {
                requested,
                min,
                max,
            } => write!(
                f,
                "power cap {:.1} W outside feasible range [{:.1}, {:.1}] W",
                requested.get(),
                min.get(),
                max.get()
            ),
            PowerError::InvalidCap(v) => write!(f, "power cap {v} is not a finite number"),
            PowerError::TableTooSmall { len } => {
                write!(f, "frequency table needs at least 2 levels, got {len}")
            }
            PowerError::NonMonotoneLevel { index } => write!(
                f,
                "frequency table must be strictly increasing in frequency and power; \
                 level {index} is not"
            ),
            PowerError::InvalidFloor(v) => {
                write!(f, "memory-bound throughput floor {v} is outside (0, 1]")
            }
        }
    }
}

impl std::error::Error for PowerError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = PowerError::CapOutOfRange {
            requested: Watts(150.0),
            min: Watts(40.0),
            max: Watts(100.0),
        };
        let s = e.to_string();
        assert!(s.contains("150.0"));
        assert!(s.contains("[40.0, 100.0]"));
        let e = PowerError::InvalidCap(f64::NAN);
        assert!(e.to_string().contains("not a finite"));
        let e = PowerError::TableTooSmall { len: 1 };
        assert!(e.to_string().contains("at least 2 levels"));
        let e = PowerError::NonMonotoneLevel { index: 3 };
        assert!(e.to_string().contains("level 3"));
        let e = PowerError::InvalidFloor(0.0);
        assert!(e.to_string().contains("outside (0, 1]"));
    }
}
