//! A RAPL-like power-capping and energy-metering interface.
//!
//! On CPUs the paper "adjusts power through Intel's RAPL interface, which
//! allows software to set a hardware power limit" (§4) and reads energy
//! from the MSR energy-status counter. Two artifacts of the real interface
//! matter to consumers and are reproduced here:
//!
//! * the energy counter is *quantized* (the RAPL energy unit is
//!   2⁻¹⁴ J ≈ 61 µJ on most parts) and *wraps* (32-bit register), so
//!   callers must read deltas and handle wraparound;
//! * the cap register is quantized to the platform's bucket granularity.
//!
//! The simulator deposits energy through [`RaplDomain::deposit`]; harness
//! code reads it back exactly like production code would.

use crate::error::PowerError;
use crate::power::CapRange;
use alert_stats::units::{Joules, Watts};
use serde::{Deserialize, Serialize};

/// The RAPL energy unit: 2⁻¹⁴ joules.
pub const ENERGY_UNIT_J: f64 = 6.103_515_625e-5;

/// Counter width: 32 bits, as on real hardware.
const COUNTER_MODULUS: u64 = 1 << 32;

/// An emulated RAPL domain: one cap register plus one energy counter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RaplDomain {
    range: CapRange,
    cap: Watts,
    /// Raw counter in energy units, wrapping at 2³².
    counter: u64,
    /// Sub-unit residue not yet visible in the counter.
    residue_j: f64,
}

impl RaplDomain {
    /// Creates a domain with the cap initialized to the range maximum
    /// (hardware boots uncapped).
    pub fn new(range: CapRange) -> Self {
        RaplDomain {
            range,
            cap: range.max(),
            counter: 0,
            residue_j: 0.0,
        }
    }

    /// The feasible cap range.
    pub fn range(&self) -> CapRange {
        self.range
    }

    /// Sets the power cap. The value is validated against the feasible
    /// range and then quantized to the bucket granularity, mirroring the
    /// MSR's limited resolution.
    pub fn set_cap(&mut self, cap: Watts) -> Result<Watts, PowerError> {
        let v = self.range.validate(cap)?;
        self.cap = self.range.quantize(v);
        Ok(self.cap)
    }

    /// The currently programmed cap.
    pub fn cap(&self) -> Watts {
        self.cap
    }

    /// Deposits consumed energy into the counter (called by the simulator).
    ///
    /// Negative or non-finite energy is ignored.
    pub fn deposit(&mut self, e: Joules) {
        if !e.is_finite() || e.get() <= 0.0 {
            return;
        }
        let total = self.residue_j + e.get();
        let units = (total / ENERGY_UNIT_J).floor();
        self.residue_j = total - units * ENERGY_UNIT_J;
        self.counter = (self.counter + units as u64) % COUNTER_MODULUS;
    }

    /// Reads the raw (wrapped, quantized) counter.
    pub fn read_raw(&self) -> u64 {
        self.counter
    }

    /// Converts a pair of raw readings into joules, handling a single
    /// wraparound (sufficient if polled more often than the wrap period,
    /// as real RAPL consumers must).
    pub fn delta_joules(before: u64, after: u64) -> Joules {
        let units = if after >= before {
            after - before
        } else {
            COUNTER_MODULUS - before + after
        };
        Joules(units as f64 * ENERGY_UNIT_J)
    }
}

/// A convenience reader that tracks the last raw value and yields deltas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyReader {
    last: u64,
}

impl EnergyReader {
    /// Starts a reader at the domain's current counter value.
    pub fn new(domain: &RaplDomain) -> Self {
        EnergyReader {
            last: domain.read_raw(),
        }
    }

    /// Returns the energy consumed since the previous call (or creation).
    pub fn poll(&mut self, domain: &RaplDomain) -> Joules {
        let now = domain.read_raw();
        let delta = RaplDomain::delta_joules(self.last, now);
        self.last = now;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain() -> RaplDomain {
        RaplDomain::new(CapRange::new(Watts(40.0), Watts(100.0), Watts(5.0)))
    }

    #[test]
    fn boots_uncapped() {
        let d = domain();
        assert_eq!(d.cap(), Watts(100.0));
    }

    #[test]
    fn set_cap_quantizes() {
        let mut d = domain();
        assert_eq!(d.set_cap(Watts(62.0)).unwrap(), Watts(60.0));
        assert_eq!(d.set_cap(Watts(63.0)).unwrap(), Watts(65.0));
        assert!(d.set_cap(Watts(20.0)).is_err());
        // Failed set leaves the register unchanged.
        assert_eq!(d.cap(), Watts(65.0));
    }

    #[test]
    fn deposit_and_read_roundtrip() {
        let mut d = domain();
        let mut r = EnergyReader::new(&d);
        d.deposit(Joules(1.0));
        let got = r.poll(&d);
        assert!((got.get() - 1.0).abs() < 2.0 * ENERGY_UNIT_J, "got {got}");
    }

    #[test]
    fn residue_accumulates_subunit_deposits() {
        let mut d = domain();
        let mut r = EnergyReader::new(&d);
        // 1000 deposits of half a unit each = 500 units total.
        for _ in 0..1000 {
            d.deposit(Joules(ENERGY_UNIT_J / 2.0));
        }
        let got = r.poll(&d);
        let want = 500.0 * ENERGY_UNIT_J;
        assert!((got.get() - want).abs() < 2.0 * ENERGY_UNIT_J);
    }

    #[test]
    fn wraparound_delta() {
        let before = COUNTER_MODULUS - 10;
        let after = 5;
        let d = RaplDomain::delta_joules(before, after);
        assert!((d.get() - 15.0 * ENERGY_UNIT_J).abs() < 1e-12);
    }

    #[test]
    fn ignores_bad_deposits() {
        let mut d = domain();
        let raw = d.read_raw();
        d.deposit(Joules(-1.0));
        d.deposit(Joules(f64::NAN));
        assert_eq!(d.read_raw(), raw);
    }

    #[test]
    fn long_run_accuracy() {
        // Quantization error must not accumulate: depositing 10_000 random
        // amounts must agree with the true sum to within one unit.
        let mut d = domain();
        let mut r = EnergyReader::new(&d);
        let mut truth = 0.0;
        let mut x: u64 = 12345;
        for _ in 0..10_000 {
            // Tiny xorshift for deterministic pseudo-random deposits.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let e = (x % 1000) as f64 * 1e-4;
            truth += e;
            d.deposit(Joules(e));
        }
        let got = r.poll(&d).get();
        assert!(
            (got - truth).abs() < ENERGY_UNIT_J,
            "got {got} want {truth}"
        );
    }
}
