//! Simulated hardware substrate for the ALERT reproduction.
//!
//! The paper evaluates on four physical platforms (an ARM embedded board,
//! a laptop CPU, a Xeon server, and an RTX 2080 GPU) with Intel RAPL power
//! capping and co-located contention benchmarks (STREAM, PARSEC Bodytrack,
//! Rodinia Backprop). None of that hardware is available here, so this
//! crate implements behavioural simulators that expose the same knobs and
//! the same *terrain* the controller must navigate:
//!
//! * [`freq`] — the cap→throughput response. A logistic curve with a
//!   memory-bound floor reproduces the paper's Fig. 3 shape: >2× latency
//!   span across the cap range and a *non-monotone* energy-vs-cap curve
//!   whose maximum sits mid-range.
//! * [`power`] — power-cap ranges and validated cap setting
//!   (2.5 W steps on the laptop, 5 W on server/GPU, per paper §4).
//! * [`rapl`] — a RAPL-like interface: quantized wrapped energy counter and
//!   cap register, so the harness reads energy the way real code would.
//! * [`gpu`] — the PyNVML analogue: a discrete frequency/power lookup
//!   table (paper §4 builds exactly such a table for the GPU).
//! * [`energy`] — per-period energy accounting (run + idle), the quantity
//!   plotted in paper Fig. 3 and optimized in Eqs. 2/9.
//! * [`contention`] — on/off co-runner processes that inflate latency with
//!   per-workload sensitivity and fat tails (paper Figs. 5, 11).
//! * [`platform`] — the four platform presets and the glue that turns
//!   (reference latency, workload class, cap, environment) into realized
//!   latency and power draw.
//! * [`backend`] — the device abstraction for heterogeneous placement:
//!   CPUs and the GPU table expose one uniform (id, power levels,
//!   contention kinds) surface, plus the shared-budget split rule.

pub mod backend;
pub mod contention;
pub mod energy;
pub mod error;
pub mod freq;
pub mod gpu;
pub mod platform;
pub mod power;
pub mod rapl;

pub use backend::{split_budget, Backend};
pub use contention::{ContentionKind, ContentionModel, ContentionProcess, PhaseSchedule};
pub use energy::{EnergyMeter, PeriodEnergy};
pub use error::PowerError;
pub use freq::ThroughputCurve;
pub use gpu::{GpuFreqTable, GpuLevel};
pub use platform::{NoiseParams, Platform, PlatformId, PlatformSpec, WorkloadClass};
pub use power::CapRange;
pub use rapl::RaplDomain;
