//! Per-period energy accounting.
//!
//! For a periodic inference workload the energy that matters is the whole
//! period's: the joules burned while the DNN runs *plus* the joules burned
//! idling until the next input arrives (paper §2.1, Fig. 3; Eq. 9 models
//! exactly this split). [`EnergyMeter`] accumulates both components.

use alert_stats::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Energy of one input period, split into run and idle components.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeriodEnergy {
    /// Energy while the inference executed.
    pub run: Joules,
    /// Energy while waiting for the next input.
    pub idle: Joules,
}

impl PeriodEnergy {
    /// Computes the period energy from draws and durations.
    ///
    /// If the inference overruns the period (`t_run >= period`), the idle
    /// component is zero.
    pub fn from_draws(run_draw: Watts, t_run: Seconds, idle_draw: Watts, period: Seconds) -> Self {
        let idle_time = Seconds((period - t_run).get().max(0.0));
        PeriodEnergy {
            run: run_draw * t_run,
            idle: idle_draw * idle_time,
        }
    }

    /// Total energy of the period.
    pub fn total(&self) -> Joules {
        self.run + self.idle
    }
}

/// Accumulates per-period energy over an episode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    run: Joules,
    idle: Joules,
    periods: u64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one period.
    pub fn record(&mut self, p: PeriodEnergy) {
        self.run += p.run;
        self.idle += p.idle;
        self.periods += 1;
    }

    /// Total run energy so far.
    pub fn run_energy(&self) -> Joules {
        self.run
    }

    /// Total idle energy so far.
    pub fn idle_energy(&self) -> Joules {
        self.idle
    }

    /// Total energy so far.
    pub fn total(&self) -> Joules {
        self.run + self.idle
    }

    /// Number of periods recorded.
    pub fn periods(&self) -> u64 {
        self.periods
    }

    /// Average energy per period; zero when empty.
    pub fn average(&self) -> Joules {
        if self.periods == 0 {
            Joules::ZERO
        } else {
            self.total() / self.periods as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn period_split() {
        let p = PeriodEnergy::from_draws(Watts(40.0), Seconds(0.5), Watts(10.0), Seconds(1.0));
        assert_eq!(p.run, Joules(20.0));
        assert_eq!(p.idle, Joules(5.0));
        assert_eq!(p.total(), Joules(25.0));
    }

    #[test]
    fn overrun_has_no_idle() {
        let p = PeriodEnergy::from_draws(Watts(40.0), Seconds(1.5), Watts(10.0), Seconds(1.0));
        assert_eq!(p.run, Joules(60.0));
        assert_eq!(p.idle, Joules(0.0));
    }

    #[test]
    fn meter_accumulates_and_averages() {
        let mut m = EnergyMeter::new();
        assert_eq!(m.average(), Joules::ZERO);
        m.record(PeriodEnergy {
            run: Joules(3.0),
            idle: Joules(1.0),
        });
        m.record(PeriodEnergy {
            run: Joules(5.0),
            idle: Joules(1.0),
        });
        assert_eq!(m.periods(), 2);
        assert_eq!(m.run_energy(), Joules(8.0));
        assert_eq!(m.idle_energy(), Joules(2.0));
        assert_eq!(m.total(), Joules(10.0));
        assert_eq!(m.average(), Joules(5.0));
    }

    #[test]
    fn energy_is_non_negative() {
        let p = PeriodEnergy::from_draws(Watts(40.0), Seconds(0.0), Watts(10.0), Seconds(0.0));
        assert!(p.total().get() >= 0.0);
    }
}
