//! Constraint grids (paper Table 3 ranges).
//!
//! The goal types themselves ([`Goal`], [`Objective`]) live in this
//! crate's [`crate::goal`] module — goals are workload statements — and
//! are re-exported here. This module contributes the *evaluation grid*:
//! each Table 4 cell
//! averages "35–40 combinations of latency, accuracy and energy
//! constraints" drawn from Table 3's ranges:
//!
//! * deadlines at 0.4×–2× the mean latency of the largest anytime DNN
//!   (measured at the default setting without contention),
//! * accuracy goals over the whole range achievable by the candidates,
//! * energy budgets spanning the platform's feasible power-cap range
//!   times the input period.

pub use crate::goal::{Goal, Objective};

use alert_models::{inference, ModelFamily};
use alert_platform::Platform;
use alert_stats::units::{Seconds, Watts};

/// Deadline factors over the mean latency of the largest anytime DNN
/// (Table 3: "0.4x–2x").
pub const DEADLINE_FACTORS: [f64; 7] = [0.4, 0.6, 0.8, 1.0, 1.25, 1.5, 2.0];

/// Fractions of the candidates' quality range used as accuracy goals
/// (Table 3: "whole range achievable"). The lowest goal sits exactly at
/// the least-accurate candidate (so even the fastest-DNN baseline can meet
/// *some* settings); the highest stays marginally below the ceiling.
pub const QUALITY_FRACTIONS: [f64; 5] = [0.0, 0.25, 0.50, 0.70, 0.85];

/// Fractions of the platform's feasible power range used as energy
/// budgets (Table 3: "whole feasible power-cap ranges").
pub const POWER_FRACTIONS: [f64; 5] = [0.25, 0.45, 0.65, 0.85, 1.0];

/// The mean latency of the largest anytime DNN at the default setting
/// (maximum cap, no contention) — the deadline unit of Table 3.
pub fn deadline_unit(family: &ModelFamily, platform: &Platform) -> Seconds {
    let anytime = family
        .anytime_members()
        .max_by(|a, b| a.ref_latency_s.total_cmp(&b.ref_latency_s))
        .unwrap_or_else(|| family.most_accurate());
    inference::profile_latency(anytime, platform, platform.default_cap())
        // lint:allow(no-panic): the default cap is drawn from the platform's own table, so it is always feasible
        .expect("default cap is feasible")
}

/// Headroom factor applied when computing the achievable quality range:
/// goals must remain reachable when a co-located job inflates latency
/// (paper Fig. 5 medians grow ~1.4–1.6×), otherwise *every* scheme —
/// including the oracle — would be forced into violations on the
/// contended episodes and the grid would measure infeasibility, not
/// adaptation.
pub const CONTENTION_HEADROOM: f64 = 2.2;

/// The best quality any candidate (traditional model or anytime stage)
/// can deliver *within* `deadline / CONTENTION_HEADROOM` at the maximum
/// cap in the nominal environment — "the whole range achievable" is
/// deadline-dependent, and accuracy goals beyond this would be
/// structurally impossible for every scheme including the oracle.
pub fn achievable_quality(
    family: &ModelFamily,
    platform: &Platform,
    deadline: Seconds,
) -> Option<f64> {
    let cap = platform.default_cap();
    let deadline = deadline / CONTENTION_HEADROOM;
    let mut best: Option<f64> = None;
    for m in family.models() {
        if !platform.supports_footprint(m.footprint_gb) {
            continue;
        }
        // lint:allow(no-panic): cap is the platform's default cap, feasible by construction; unsupported footprints were skipped above
        let full = inference::profile_latency(m, platform, cap).expect("feasible");
        match &m.anytime {
            None => {
                if full <= deadline {
                    best = Some(best.map_or(m.quality, |b: f64| b.max(m.quality)));
                }
            }
            Some(spec) => {
                for s in spec.stages() {
                    if full * s.frac <= deadline {
                        best = Some(best.map_or(s.quality, |b: f64| b.max(s.quality)));
                    }
                }
            }
        }
    }
    best
}

/// The quality range achievable by `family` on `platform` — the span
/// that *relative* quality-floor patches
/// ([`crate::GoalPatch::floor_frac`]) resolve against, so one named
/// scenario binds identically for image-quality families (≈ `[0.85,
/// 0.94]`) and negative-perplexity families. The span runs from the
/// least to the most accurate candidate that fits the platform (all
/// candidates, when none fit — degenerate platforms should still get a
/// well-formed span rather than a panic).
pub fn quality_span(family: &ModelFamily, platform: &Platform) -> crate::script::QualitySpan {
    let fitting: Vec<f64> = family
        .models()
        .iter()
        .filter(|m| platform.supports_footprint(m.footprint_gb))
        .map(|m| m.quality)
        .collect();
    let qualities: Vec<f64> = if fitting.is_empty() {
        family.models().iter().map(|m| m.quality).collect()
    } else {
        fitting
    };
    let lo = qualities.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = qualities.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    crate::script::QualitySpan::new(lo, hi)
}

/// Builds the 35-setting constraint grid for one (objective, family,
/// platform) combination — one Table 4 cell.
pub fn constraint_grid(
    objective: Objective,
    family: &ModelFamily,
    platform: &Platform,
) -> Vec<Goal> {
    let unit = deadline_unit(family, platform);
    let q_min = family
        .models()
        .iter()
        .filter(|m| platform.supports_footprint(m.footprint_gb))
        .map(|m| m.quality)
        .fold(f64::INFINITY, f64::min);
    let p_min = platform.cap_range().min();
    let p_max = platform.cap_range().max();

    let mut out = Vec::with_capacity(35);
    for &df in &DEADLINE_FACTORS {
        let deadline = unit * df;
        match objective {
            Objective::MinimizeEnergy => {
                // Accuracy goals span the range achievable *within this
                // deadline* (with a small headroom for run-time noise).
                let q_max = achievable_quality(family, platform, deadline)
                    .unwrap_or(q_min)
                    .max(q_min);
                for &qf in &QUALITY_FRACTIONS {
                    let q = q_min + (q_max - q_min) * qf;
                    out.push(Goal::minimize_energy(deadline, q));
                }
            }
            Objective::MinimizeError => {
                for &pf in &POWER_FRACTIONS {
                    let level = Watts(p_min.get() + (p_max.get() - p_min.get()) * pf);
                    out.push(Goal::minimize_error(deadline, level * deadline));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Joules;

    #[test]
    fn grid_has_35_settings() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        for obj in [Objective::MinimizeEnergy, Objective::MinimizeError] {
            let grid = constraint_grid(obj, &family, &platform);
            assert_eq!(grid.len(), 35);
            for g in &grid {
                assert!(g.validate().is_ok(), "{g:?}");
            }
        }
    }

    #[test]
    fn deadline_unit_is_anytime_latency() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu2();
        let unit = deadline_unit(&family, &platform);
        // Depth-Nest at CPU2 @ 100 W = 175 ms.
        assert!((unit.get() - 0.175).abs() < 1e-9, "unit = {unit}");
    }

    #[test]
    fn deadlines_span_04_to_2x() {
        let family = ModelFamily::sentence_prediction();
        let platform = Platform::cpu1();
        let unit = deadline_unit(&family, &platform);
        let grid = constraint_grid(Objective::MinimizeEnergy, &family, &platform);
        let lo = grid
            .iter()
            .map(|g| g.deadline.get())
            .fold(f64::INFINITY, f64::min);
        let hi = grid
            .iter()
            .map(|g| g.deadline.get())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((lo - 0.4 * unit.get()).abs() < 1e-12);
        assert!((hi - 2.0 * unit.get()).abs() < 1e-12);
    }

    #[test]
    fn quality_goals_are_achievable() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu1();
        let grid = constraint_grid(Objective::MinimizeEnergy, &family, &platform);
        let best = family.most_accurate().quality;
        for g in &grid {
            assert!(g.min_quality.unwrap() <= best);
        }
    }

    #[test]
    fn energy_budgets_scale_with_deadline() {
        let family = ModelFamily::image_classification();
        let platform = Platform::cpu2();
        let grid = constraint_grid(Objective::MinimizeError, &family, &platform);
        // Largest budget = max power × longest deadline.
        let unit = deadline_unit(&family, &platform);
        let max_budget = grid
            .iter()
            .map(|g| g.energy_budget.unwrap().get())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((max_budget - 100.0 * 2.0 * unit.get()).abs() < 1e-9);
    }

    #[test]
    fn reexported_goal_constructors_work() {
        assert!(Goal::minimize_energy(Seconds(0.1), 0.9).validate().is_ok());
        assert!(Goal::minimize_error(Seconds(0.1), Joules(5.0))
            .validate()
            .is_ok());
    }

    #[test]
    fn quality_span_covers_each_familys_range() {
        let platform = Platform::cpu1();
        let image = quality_span(&ModelFamily::image_classification(), &platform);
        assert!(image.lo < image.hi);
        assert!((0.80..0.90).contains(&image.lo), "image lo {}", image.lo);
        assert!((0.90..1.00).contains(&image.hi), "image hi {}", image.hi);
        let nlp = quality_span(&ModelFamily::sentence_prediction(), &platform);
        assert!(nlp.lo < nlp.hi);
        assert!(nlp.hi < 0.0, "perplexity scores are negative: {}", nlp.hi);
        // The same fraction resolves inside each family's own range.
        for span in [image, nlp] {
            let floor = span.floor_at(0.85);
            assert!(span.lo <= floor && floor <= span.hi);
        }
    }

    #[test]
    fn rnn_quality_goals_are_negative_perplexities() {
        let family = ModelFamily::sentence_prediction();
        let platform = Platform::cpu1();
        let grid = constraint_grid(Objective::MinimizeEnergy, &family, &platform);
        for g in &grid {
            let q = g.min_quality.unwrap();
            assert!(q < 0.0, "perplexity scores are negative, got {q}");
            assert!((-160.0..=-115.0).contains(&q));
        }
    }
}
