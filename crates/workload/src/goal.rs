//! Goals (user requirements) and dynamic goal adjustment.
//!
//! A [`Goal`] is the controller-facing statement of paper Eqs. 1–2:
//! optimize one dimension subject to constraints on the other two, with an
//! optional probability threshold (Eqs. 10–11).
//!
//! [`GoalAdjuster`] implements §3.2 step 2: for grouped inputs (the words
//! of a sentence in NLP1 share one sentence-wide deadline) the per-input
//! deadline is the remaining budget divided by the remaining members, so
//! "delays in previous input processing … shorten the available time for
//! the next input"; and the controller's own worst-case overhead is
//! subtracted "so that ALERT itself will not cause violations" (§3.2, §4).

use alert_stats::units::{Joules, Seconds};
use serde::{Deserialize, Serialize};

/// What to optimize; the other two dimensions become constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize energy s.t. deadline + quality floor (paper Eq. 2).
    MinimizeEnergy,
    /// Minimize error (maximize quality) s.t. deadline + energy budget
    /// (paper Eq. 1).
    MinimizeError,
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::MinimizeEnergy => write!(f, "MinimizeEnergy"),
            Objective::MinimizeError => write!(f, "MinimizeError"),
        }
    }
}

/// One constraint setting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Goal {
    /// The optimization objective.
    pub objective: Objective,
    /// Per-input (or per-group, for grouped tasks) deadline.
    pub deadline: Seconds,
    /// Quality-score floor (set for [`Objective::MinimizeEnergy`]).
    pub min_quality: Option<f64>,
    /// Per-period energy budget (set for [`Objective::MinimizeError`]).
    pub energy_budget: Option<Joules>,
    /// Optional probability threshold Pr_th (paper Eqs. 10–11); `None`
    /// uses the default full-expectation mode.
    pub prob_threshold: Option<f64>,
}

impl Goal {
    /// A minimize-energy goal.
    pub fn minimize_energy(deadline: Seconds, min_quality: f64) -> Self {
        Goal {
            objective: Objective::MinimizeEnergy,
            deadline,
            min_quality: Some(min_quality),
            energy_budget: None,
            prob_threshold: None,
        }
    }

    /// A minimize-error goal.
    pub fn minimize_error(deadline: Seconds, energy_budget: Joules) -> Self {
        Goal {
            objective: Objective::MinimizeError,
            deadline,
            min_quality: None,
            energy_budget: Some(energy_budget),
            prob_threshold: None,
        }
    }

    /// Returns a copy with a probability threshold set (Eqs. 10–11).
    ///
    /// # Panics
    ///
    /// Panics unless `pr` is in `[0, 1)`.
    pub fn with_prob_threshold(mut self, pr: f64) -> Self {
        assert!((0.0..1.0).contains(&pr), "threshold must be in [0,1)");
        self.prob_threshold = Some(pr);
        self
    }

    /// Returns a copy with the deadline replaced (used by goal
    /// adjustment).
    pub fn with_deadline(mut self, deadline: Seconds) -> Self {
        self.deadline = deadline;
        self
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.deadline.is_finite() && self.deadline.get() > 0.0) {
            return Err(format!("bad deadline {}", self.deadline));
        }
        match self.objective {
            Objective::MinimizeEnergy => {
                if self.min_quality.is_none() {
                    return Err("minimize-energy goal needs a quality floor".into());
                }
            }
            Objective::MinimizeError => match self.energy_budget {
                None => return Err("minimize-error goal needs an energy budget".into()),
                Some(e) if !(e.is_finite() && e.get() > 0.0) => {
                    return Err(format!("bad energy budget {e}"));
                }
                _ => {}
            },
        }
        Ok(())
    }
}

/// Dynamic per-input deadline computation (paper §3.2 step 2).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GoalAdjuster {
    /// Worst observed controller overhead, reserved out of every deadline.
    overhead_reserve: Seconds,
    /// Remaining budget of the current group, if inside one.
    group_remaining: Option<Seconds>,
    /// Members of the current group not yet dispatched.
    group_members_left: usize,
}

impl GoalAdjuster {
    /// Creates an adjuster with no overhead observed yet.
    pub fn new() -> Self {
        GoalAdjuster {
            overhead_reserve: Seconds::ZERO,
            group_remaining: None,
            group_members_left: 0,
        }
    }

    /// Records a measured controller overhead; the reserve keeps the
    /// worst case seen.
    pub fn record_overhead(&mut self, overhead: Seconds) {
        if overhead.is_finite() && overhead > self.overhead_reserve {
            self.overhead_reserve = overhead;
        }
    }

    /// The current overhead reserve.
    pub fn overhead_reserve(&self) -> Seconds {
        self.overhead_reserve
    }

    /// Begins a group (sentence) with `members` inputs sharing
    /// `group_deadline` of total budget.
    ///
    /// # Panics
    ///
    /// Panics if `members == 0`.
    pub fn begin_group(&mut self, group_deadline: Seconds, members: usize) {
        assert!(members > 0, "a group needs at least one member");
        self.group_remaining = Some(group_deadline);
        self.group_members_left = members;
    }

    /// Computes the effective deadline for the next input and internally
    /// claims one group slot. For ungrouped inputs the effective deadline
    /// is the goal deadline minus the overhead reserve.
    ///
    /// The returned deadline is floored at a small positive epsilon so a
    /// blown group budget degrades (everything misses) rather than
    /// producing nonsensical non-positive deadlines.
    pub fn next_deadline(&mut self, goal_deadline: Seconds) -> Seconds {
        let raw = match (self.group_remaining, self.group_members_left) {
            (Some(remaining), left) if left > 0 => remaining / left as f64,
            _ => goal_deadline,
        };
        if self.group_members_left > 0 {
            self.group_members_left -= 1;
        }
        Seconds((raw - self.overhead_reserve).get().max(1e-6))
    }

    /// Records the latency actually consumed by the input just processed,
    /// shrinking the group budget.
    pub fn consume(&mut self, latency: Seconds) {
        if let Some(rem) = self.group_remaining.as_mut() {
            *rem = Seconds((rem.get() - latency.get()).max(0.0));
            if self.group_members_left == 0 {
                self.group_remaining = None;
            }
        }
    }

    /// Remaining budget of the current group, if any.
    pub fn group_remaining(&self) -> Option<Seconds> {
        self.group_remaining
    }
}

impl Default for GoalAdjuster {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_validation() {
        assert!(Goal::minimize_energy(Seconds(0.1), 0.9).validate().is_ok());
        assert!(Goal::minimize_error(Seconds(0.1), Joules(5.0))
            .validate()
            .is_ok());
        let mut bad = Goal::minimize_energy(Seconds(0.1), 0.9);
        bad.deadline = Seconds(0.0);
        assert!(bad.validate().is_err());
        let mut bad = Goal::minimize_error(Seconds(0.1), Joules(5.0));
        bad.energy_budget = None;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ungrouped_deadline_subtracts_overhead() {
        let mut a = GoalAdjuster::new();
        assert_eq!(a.next_deadline(Seconds(0.1)), Seconds(0.1));
        a.record_overhead(Seconds(0.002));
        a.record_overhead(Seconds(0.001)); // smaller: reserve keeps max
        assert!((a.next_deadline(Seconds(0.1)).get() - 0.098).abs() < 1e-12);
        assert_eq!(a.overhead_reserve(), Seconds(0.002));
    }

    #[test]
    fn group_budget_divides_evenly_when_on_pace() {
        let mut a = GoalAdjuster::new();
        a.begin_group(Seconds(1.0), 4);
        let d1 = a.next_deadline(Seconds(9.9));
        assert!((d1.get() - 0.25).abs() < 1e-12);
        a.consume(Seconds(0.25));
        let d2 = a.next_deadline(Seconds(9.9));
        assert!((d2.get() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slow_members_shrink_later_deadlines() {
        // Paper §3.2: "delays in previous input processing could greatly
        // shorten the available time for the next input".
        let mut a = GoalAdjuster::new();
        a.begin_group(Seconds(1.0), 4);
        let _ = a.next_deadline(Seconds(9.9));
        a.consume(Seconds(0.7)); // way over the fair share of 0.25
        let d2 = a.next_deadline(Seconds(9.9));
        assert!((d2.get() - 0.1).abs() < 1e-12, "d2 = {d2}");
    }

    #[test]
    fn fast_members_relax_later_deadlines() {
        let mut a = GoalAdjuster::new();
        a.begin_group(Seconds(1.0), 4);
        let _ = a.next_deadline(Seconds(9.9));
        a.consume(Seconds(0.1));
        let d2 = a.next_deadline(Seconds(9.9));
        assert!((d2.get() - 0.3).abs() < 1e-12, "d2 = {d2}");
    }

    #[test]
    fn blown_budget_floors_at_epsilon() {
        let mut a = GoalAdjuster::new();
        a.begin_group(Seconds(0.2), 2);
        let _ = a.next_deadline(Seconds(9.9));
        a.consume(Seconds(0.5)); // budget gone
        let d = a.next_deadline(Seconds(9.9));
        assert!(d.get() > 0.0 && d.get() <= 1e-6);
    }

    #[test]
    #[should_panic(expected = "at least one member")]
    fn empty_group_rejected() {
        GoalAdjuster::new().begin_group(Seconds(1.0), 0);
    }

    #[test]
    fn deadline_fully_consumed_by_earlier_members_floors_all_later_ones() {
        let mut a = GoalAdjuster::new();
        a.begin_group(Seconds(0.3), 3);
        let _ = a.next_deadline(Seconds(9.9));
        a.consume(Seconds(0.3)); // exactly the whole budget
        for _ in 0..2 {
            let d = a.next_deadline(Seconds(9.9));
            assert!(d.get() > 0.0 && d.get() <= 1e-6, "d = {d}");
            a.consume(Seconds(0.0));
        }
    }

    #[test]
    fn overhead_reserve_never_yields_negative_deadline() {
        // Reserve larger than the goal deadline: the effective deadline
        // clamps to the epsilon floor instead of going non-positive.
        let mut a = GoalAdjuster::new();
        a.record_overhead(Seconds(0.5));
        let d = a.next_deadline(Seconds(0.1));
        assert!(d.get() > 0.0 && d.get() <= 1e-6, "d = {d}");
        // Same inside a group whose fair share is below the reserve.
        a.begin_group(Seconds(0.4), 4);
        let d = a.next_deadline(Seconds(9.9));
        assert!(d.get() > 0.0 && d.get() <= 1e-6, "d = {d}");
    }

    #[test]
    fn non_finite_overhead_is_ignored() {
        let mut a = GoalAdjuster::new();
        a.record_overhead(Seconds(f64::NAN));
        a.record_overhead(Seconds(f64::INFINITY));
        assert_eq!(a.overhead_reserve(), Seconds::ZERO);
        assert_eq!(a.next_deadline(Seconds(0.1)), Seconds(0.1));
    }
}
