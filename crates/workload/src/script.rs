//! The scenario-script DSL: declarative, composable dynamic environments.
//!
//! ALERT's headline claim is robustness under *changing* conditions —
//! co-runner contention, power-cap changes, and goal changes mid-stream
//! (paper §5, Table 3, Fig. 9). A [`ScenarioScript`] describes such an
//! environment as a **timeline of events** over one serving episode:
//!
//! * [`ScriptEvent::Contention`] — a co-runner (memory or compute) with
//!   its own on/off [`PhaseSchedule`]; any number compose, including both
//!   kinds at once (compound stress).
//! * [`ScriptEvent::CapStep`] — from a timeline mark onward, the platform
//!   enforces a power-cap ceiling (a fraction of the feasible cap range;
//!   `1.0` restores the full range). Schedulers are *not* told — they
//!   observe the slowdown, exactly as on real hardware under RAPL.
//! * [`ScriptEvent::GoalChange`] — the user's requirement changes
//!   mid-stream: deadlines tighten or relax (a scale on the base
//!   deadline), quality floors move, energy budgets scale.
//! * [`ScriptEvent::DriftRamp`] — input-distribution drift: the
//!   per-input latency scale ramps toward a peak factor (e.g. sentences
//!   growing longer), composing multiplicatively with the stream's own
//!   sampled variability.
//! * [`ScriptEvent::ArrivalChange`] — the arrival process switches
//!   (periodic → bursty → Poisson → trace replay), reshaping the
//!   dispatch grid and the idle-energy accounting windows.
//!   [`ArrivalProcess::Trace`] replays a recorded request log attached
//!   via [`ScenarioScript::with_trace`]: each input's inter-arrival time
//!   and latency scale come from the capture, fitted onto the horizon by
//!   a [`crate::trace::TraceFit`] mode, and every other event class
//!   (caps, goal patches, drift, contention) composes on top — recorded
//!   traffic re-run under counterfactual environments.
//! * [`ScriptEvent::Churn`] — a wave of sessions opens and closes
//!   against the serving runtime. Environment realization ignores churn
//!   (it does not touch the frozen per-input state); runtime drivers
//!   (`alert-bench --bin scenarios`) execute the waves.
//! * [`ScriptEvent::DeviceCapStep`] / [`ScriptEvent::GpuThrottle`] —
//!   heterogeneous-node events: a cap ceiling lands on one *device* of a
//!   multi-backend episode, or a GPU backend is clock-throttled a number
//!   of frequency-table levels. On single-CPU episodes both are inert
//!   (a GPU throttle has no GPU to bind to; a device-targeted cap only
//!   binds to its device), so a heterogeneous scenario can join the
//!   CPU-only matrix unchanged.
//!
//! **Timeline units.** Contention schedules are wall-clock seconds: they
//! model external co-runners with their own clocks (and keep the Fig. 9
//! scripted window bit-compatible). All other events fire at a `t` that
//! is a **fraction of the episode horizon** (`n_inputs × base deadline`,
//! clamped to `[0, 1]`), so named scenarios compose with any stream
//! length or deadline without retuning.
//!
//! **Frozen randomness.** A script is *declarative*: realizing it
//! (`alert-sched::env::EpisodeEnv::build`) draws every random quantity
//! once from seed-keyed streams and freezes it, so every scheme faces
//! bit-identical conditions and Oracle counterfactuals stay exact. The
//! script itself holds no RNG state and serializes losslessly.

use alert_platform::contention::{ContentionKind, ContentionProcess, PhaseSchedule};
use alert_stats::units::Seconds;
use serde::{Deserialize, Serialize};

use crate::constraints::Goal;
use crate::trace::{TraceFit, TraceSource};

/// How inputs arrive.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Fixed grid: one input per effective deadline (sensor-style
    /// periodic inputs, paper §2.1). The historical default.
    Periodic,
    /// Poisson arrivals: exponential inter-arrival times with mean
    /// `deadline / rate_scale` (`rate_scale > 1` ⇒ overload).
    Poisson {
        /// Arrival-rate multiplier over the periodic rate.
        rate_scale: f64,
    },
    /// Bursts of `burst` inputs spaced `spread × deadline` apart,
    /// followed by a gap that keeps the mean period equal to the
    /// deadline (same offered load, bursty shape).
    Bursty {
        /// Inputs per burst (≥ 1).
        burst: usize,
        /// Intra-burst spacing as a fraction of the deadline (in `(0, 1)`).
        spread: f64,
    },
    /// Replay of a recorded request log: the script's attached
    /// [`TraceSource`] ([`ScenarioScript::with_trace`]) supplies each
    /// input's inter-arrival time *and* latency scale, fitted onto the
    /// horizon by `fit`. Environment realization resolves this variant
    /// against the attachment; a bare [`ArrivalSampler`] (no trace in
    /// reach) falls back to the periodic grid.
    Trace {
        /// How a horizon/trace length mismatch is reconciled.
        fit: TraceFit,
    },
}

impl ArrivalProcess {
    pub(crate) fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalProcess::Periodic => Ok(()),
            ArrivalProcess::Poisson { rate_scale } => {
                if rate_scale.is_finite() && rate_scale > 0.0 {
                    Ok(())
                } else {
                    Err(format!(
                        "Poisson rate_scale must be positive, got {rate_scale}"
                    ))
                }
            }
            ArrivalProcess::Bursty { burst, spread } => {
                if burst == 0 {
                    return Err("Bursty burst must be ≥ 1".into());
                }
                if !(spread.is_finite() && spread > 0.0 && spread < 1.0) {
                    return Err(format!("Bursty spread must be in (0,1), got {spread}"));
                }
                Ok(())
            }
            // The fit mode is self-valid; the attached source is checked
            // at the script level (`ScenarioScript::validate`).
            ArrivalProcess::Trace { .. } => Ok(()),
        }
    }

    /// `true` for the trace-replay arrival source.
    pub fn is_trace(&self) -> bool {
        matches!(self, ArrivalProcess::Trace { .. })
    }
}

/// Samples successive inter-arrival periods for a (possibly switching)
/// arrival process. One uniform draw `u ∈ [0, 1)` is consumed per input
/// *regardless of the process in force*, so switching the arrival shape
/// never re-aligns the other frozen random streams.
#[derive(Debug, Clone, Default)]
pub struct ArrivalSampler {
    /// Position inside the current burst cycle (`Bursty` only).
    burst_pos: usize,
}

impl ArrivalSampler {
    /// A fresh sampler at the start of an episode.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the burst-cycle state. Environment realization calls this
    /// while a trace segment is in force (trace periods bypass
    /// [`ArrivalSampler::next_period`]), so a later switch back to
    /// `Bursty` starts a fresh cycle exactly as a direct `next_period`
    /// call under `Trace` would have left it.
    pub fn reset(&mut self) {
        self.burst_pos = 0;
    }

    /// The period until the next input under `process`, given the
    /// effective `deadline` and one pre-drawn uniform `u ∈ [0, 1)`.
    pub fn next_period(&mut self, process: &ArrivalProcess, deadline: Seconds, u: f64) -> Seconds {
        match *process {
            ArrivalProcess::Periodic => {
                self.burst_pos = 0;
                deadline
            }
            ArrivalProcess::Poisson { rate_scale } => {
                self.burst_pos = 0;
                let mean = deadline.get() / rate_scale;
                // Inverse-CDF; floored so dispatch time stays monotone
                // with a strictly positive step.
                Seconds((-(1.0 - u).ln() * mean).max(1e-6))
            }
            ArrivalProcess::Bursty { burst, spread } => {
                let pos = self.burst_pos % burst.max(1);
                self.burst_pos = pos + 1;
                if pos + 1 < burst {
                    deadline * spread
                } else {
                    // Close the cycle: total cycle time = burst × deadline.
                    self.burst_pos = 0;
                    deadline * (burst as f64 - spread * (burst as f64 - 1.0))
                }
            }
            // Trace replay is resolved by environment realization against
            // the script's attached source; a bare sampler degrades to
            // the periodic grid.
            ArrivalProcess::Trace { .. } => {
                self.burst_pos = 0;
                deadline
            }
        }
    }
}

/// A family's achievable quality range, used to resolve *relative*
/// quality-floor patches ([`GoalPatch::min_quality_frac`]): fraction `f`
/// maps to `lo + f × (hi − lo)`. Image-quality families span roughly
/// `[0.85, 0.94]` while sentence prediction scores negative
/// perplexities, so named scenarios express floors as range fractions
/// and stay family-generic (see
/// `alert_workload::constraints::quality_span`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualitySpan {
    /// Quality of the least accurate candidate.
    pub lo: f64,
    /// Quality of the most accurate candidate.
    pub hi: f64,
}

impl QualitySpan {
    /// A span from explicit bounds (ordered on construction).
    pub fn new(lo: f64, hi: f64) -> Self {
        QualitySpan {
            lo: lo.min(hi),
            hi: lo.max(hi),
        }
    }

    /// The absolute floor at fraction `frac` of the span.
    pub fn floor_at(&self, frac: f64) -> f64 {
        self.lo + frac * (self.hi - self.lo)
    }
}

/// A mid-stream change of the user requirement, applied to the *base*
/// goal. Patches on the timeline compose cumulatively in event order:
/// deadline/budget scales multiply, quality floors last-set-wins.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoalPatch {
    /// Multiplies the deadline in force (`< 1` tightens).
    pub deadline_scale: f64,
    /// Replaces the quality floor with an absolute value
    /// (minimize-energy goals). Mutually exclusive with
    /// `min_quality_frac`.
    pub min_quality: Option<f64>,
    /// Replaces the quality floor with a *fraction* of the candidate
    /// family's achievable quality range (a [`QualitySpan`], supplied at
    /// realization), so one named scenario works across image-quality
    /// and negative-perplexity families. Mutually exclusive with
    /// `min_quality`.
    pub min_quality_frac: Option<f64>,
    /// Multiplies the energy budget in force (minimize-error goals).
    pub energy_budget_scale: Option<f64>,
}

impl Default for GoalPatch {
    /// The identity patch: nothing changes.
    fn default() -> Self {
        GoalPatch {
            deadline_scale: 1.0,
            min_quality: None,
            min_quality_frac: None,
            energy_budget_scale: None,
        }
    }
}

impl GoalPatch {
    /// A patch that only rescales the deadline.
    pub fn deadline(scale: f64) -> Self {
        GoalPatch {
            deadline_scale: scale,
            ..Default::default()
        }
    }

    /// A patch that moves the quality floor to fraction `frac` of the
    /// family's achievable range (family-generic floor raise).
    pub fn floor_frac(frac: f64) -> Self {
        GoalPatch {
            min_quality_frac: Some(frac),
            ..Default::default()
        }
    }

    /// Validates the patch fields (finite positive scales, floor forms
    /// mutually exclusive). Public so admission-time degradation
    /// ([`crate::admission`], `alert-sched::serving`) can reject a
    /// malformed degrade patch before any request consults it.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.deadline_scale.is_finite() && self.deadline_scale > 0.0) {
            return Err(format!(
                "goal deadline_scale must be positive, got {}",
                self.deadline_scale
            ));
        }
        if let Some(s) = self.energy_budget_scale {
            if !(s.is_finite() && s > 0.0) {
                return Err(format!(
                    "goal energy_budget_scale must be positive, got {s}"
                ));
            }
        }
        if let Some(q) = self.min_quality {
            if !q.is_finite() {
                return Err(format!("goal min_quality must be finite, got {q}"));
            }
        }
        if let Some(f) = self.min_quality_frac {
            if !(f.is_finite() && (0.0..=1.0).contains(&f)) {
                return Err(format!("goal min_quality_frac must be in [0,1], got {f}"));
            }
            if self.min_quality.is_some() {
                return Err(
                    "goal patch sets both min_quality and min_quality_frac; pick one".into(),
                );
            }
        }
        Ok(())
    }

    /// Applies the patch to `goal` in place. Relative quality floors
    /// ([`GoalPatch::min_quality_frac`]) resolve against `span` when
    /// supplied and are otherwise ignored. Public so the serving
    /// front-end can degrade a request's goal at admission time with
    /// the exact semantics scripted mid-stream goal changes use — the
    /// patched goal is then the *effective* goal the episode records
    /// and is judged against.
    pub fn apply(&self, goal: &mut Goal, span: Option<QualitySpan>) {
        goal.deadline = goal.deadline * self.deadline_scale;
        if let Some(q) = self.min_quality {
            goal.min_quality = Some(q);
        }
        if let (Some(f), Some(s)) = (self.min_quality_frac, span) {
            goal.min_quality = Some(s.floor_at(f));
        }
        if let (Some(s), Some(b)) = (self.energy_budget_scale, goal.energy_budget) {
            goal.energy_budget = Some(b * s);
        }
    }
}

/// One timeline event of a [`ScenarioScript`].
///
/// `at`/`from`/`to` marks are fractions of the episode horizon (see the
/// module docs); contention schedules are wall-clock seconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ScriptEvent {
    /// A co-located job with its own activity schedule.
    Contention {
        /// What the co-runner stresses.
        kind: ContentionKind,
        /// When it is active (wall-clock seconds).
        schedule: PhaseSchedule,
    },
    /// From `at` onward the platform enforces a cap ceiling at `frac` of
    /// the feasible cap range (`0` = minimum cap, `1` = unrestricted).
    /// Later steps replace earlier ones.
    CapStep {
        /// Horizon fraction at which the step lands.
        at: f64,
        /// Ceiling position within the feasible cap range.
        frac: f64,
    },
    /// From `at` onward the requirement changes by `patch` (cumulative
    /// with earlier goal changes).
    GoalChange {
        /// Horizon fraction at which the requirement changes.
        at: f64,
        /// The change.
        patch: GoalPatch,
    },
    /// The per-input latency scale ramps linearly from 1 at `from` to
    /// `peak` at `to`, holding `peak` afterwards. Multiple ramps compose
    /// multiplicatively.
    DriftRamp {
        /// Horizon fraction where the ramp starts.
        from: f64,
        /// Horizon fraction where the ramp reaches `peak`.
        to: f64,
        /// Latency-scale factor at the top of the ramp.
        peak: f64,
    },
    /// From `at` onward inputs arrive under `process`.
    ArrivalChange {
        /// Horizon fraction at which the arrival process switches.
        at: f64,
        /// The new arrival process.
        process: ArrivalProcess,
    },
    /// At `at`, a runtime driver opens `open` and closes `close`
    /// background sessions (ignored by environment realization).
    Churn {
        /// Horizon fraction of the wave.
        at: f64,
        /// Sessions to open.
        open: usize,
        /// Sessions to close.
        close: usize,
    },
    /// From `at` onward, device `device` of a heterogeneous node
    /// enforces a cap ceiling at `frac` of *that device's* feasible cap
    /// range. The global [`ScriptEvent::CapStep`] keeps its historical
    /// meaning (device 0); on a targeted device the two compose by
    /// minimum. Later steps on the same device replace earlier ones.
    DeviceCapStep {
        /// Horizon fraction at which the step lands.
        at: f64,
        /// Device index within the episode's backend list.
        device: usize,
        /// Ceiling position within the device's feasible cap range.
        frac: f64,
    },
    /// From `at` onward a GPU backend is clock-throttled `steps` levels
    /// below its top frequency-table entry (an external thermal or
    /// driver throttle). Realization maps the step count onto the
    /// board-power ceiling of the throttled table level; non-GPU
    /// backends ignore the event. Later throttles replace earlier ones;
    /// `steps = 0` restores the full clock.
    GpuThrottle {
        /// Horizon fraction at which the throttle lands.
        at: f64,
        /// Clock levels below the top of the GPU frequency table
        /// (saturating at the slowest level).
        steps: usize,
    },
}

/// A declarative scripted environment: an initial arrival process plus a
/// timeline of [`ScriptEvent`]s. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioScript {
    /// Arrival process in force at the start of the episode.
    pub arrival: ArrivalProcess,
    /// Timeline events, in any order (queries sort by mark internally
    /// where order matters).
    pub events: Vec<ScriptEvent>,
    /// The recorded request log replayed by any
    /// [`ArrivalProcess::Trace`] arrival on this script (initial or via
    /// [`ScriptEvent::ArrivalChange`]); validation requires it whenever
    /// the script replays a trace. `None` for synthetic scripts.
    pub trace: Option<TraceSource>,
}

impl Default for ScenarioScript {
    /// The quiescent script: periodic arrivals, no events — the paper's
    /// "Default" environment.
    fn default() -> Self {
        ScenarioScript {
            arrival: ArrivalProcess::Periodic,
            events: Vec::new(),
            trace: None,
        }
    }
}

fn frac_ok(t: f64) -> bool {
    t.is_finite() && (0.0..=1.0).contains(&t)
}

impl ScenarioScript {
    /// A quiescent script (periodic arrivals, empty timeline).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event (builder-style).
    pub fn with(mut self, event: ScriptEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Sets the initial arrival process (builder-style).
    pub fn with_arrival(mut self, arrival: ArrivalProcess) -> Self {
        self.arrival = arrival;
        self
    }

    /// Attaches the recorded request log replayed by
    /// [`ArrivalProcess::Trace`] arrivals (builder-style).
    pub fn with_trace(mut self, trace: TraceSource) -> Self {
        self.trace = Some(trace);
        self
    }

    /// The attached replay source, if any.
    pub fn trace(&self) -> Option<&TraceSource> {
        self.trace.as_ref()
    }

    /// Every trace fit mode the script's arrival timeline can put in
    /// force (initial arrival plus `ArrivalChange` events), deduplicated.
    pub fn trace_fits(&self) -> Vec<TraceFit> {
        let mut out: Vec<TraceFit> = Vec::new();
        let mut push = |p: &ArrivalProcess| {
            if let ArrivalProcess::Trace { fit } = p {
                if !out.contains(fit) {
                    out.push(*fit);
                }
            }
        };
        push(&self.arrival);
        for e in &self.events {
            if let ScriptEvent::ArrivalChange { process, .. } = e {
                push(process);
            }
        }
        out
    }

    /// `true` when any arrival on the timeline replays a trace.
    pub fn uses_trace(&self) -> bool {
        !self.trace_fits().is_empty()
    }

    /// `true` when any goal change moves the quality floor *relative* to
    /// the family range — such scripts need a [`QualitySpan`] at
    /// realization.
    pub fn uses_relative_floor(&self) -> bool {
        self.events.iter().any(|e| {
            matches!(
                e,
                ScriptEvent::GoalChange { patch, .. } if patch.min_quality_frac.is_some()
            )
        })
    }

    /// Validates the whole script; realization refuses invalid scripts.
    pub fn validate(&self) -> Result<(), String> {
        self.arrival.validate()?;
        if let Some(trace) = &self.trace {
            trace.validate()?;
        }
        if self.uses_trace() && self.trace.is_none() {
            return Err("script replays a trace arrival but no trace is attached \
                 (ScenarioScript::with_trace)"
                .into());
        }
        for (i, e) in self.events.iter().enumerate() {
            let res = match e {
                ScriptEvent::Contention { schedule, .. } => match schedule {
                    PhaseSchedule::Windows(ws) => ws
                        .iter()
                        .all(|(s, t)| s.is_finite() && t.is_finite() && s <= t)
                        .then_some(())
                        .ok_or_else(|| "contention windows must satisfy start ≤ end".to_string()),
                    PhaseSchedule::Random { on, off, .. } => {
                        let ok = |(lo, hi): &(Seconds, Seconds)| {
                            lo.is_finite() && hi.is_finite() && lo.get() > 0.0 && lo <= hi
                        };
                        (ok(on) && ok(off)).then_some(()).ok_or_else(|| {
                            "random phase ranges must be positive and ordered".to_string()
                        })
                    }
                    _ => Ok(()),
                },
                ScriptEvent::CapStep { at, frac } => (frac_ok(*at) && frac_ok(*frac))
                    .then_some(())
                    .ok_or_else(|| format!("cap step needs at/frac in [0,1], got {at}/{frac}")),
                ScriptEvent::GoalChange { at, patch } => {
                    if !frac_ok(*at) {
                        Err(format!("goal change mark must be in [0,1], got {at}"))
                    } else {
                        patch.validate()
                    }
                }
                ScriptEvent::DriftRamp { from, to, peak } => {
                    if !(frac_ok(*from) && frac_ok(*to) && from <= to) {
                        Err(format!(
                            "drift ramp needs 0 ≤ from ≤ to ≤ 1, got {from}..{to}"
                        ))
                    } else if !(peak.is_finite() && *peak >= 0.05) {
                        Err(format!("drift peak must be ≥ 0.05, got {peak}"))
                    } else {
                        Ok(())
                    }
                }
                ScriptEvent::ArrivalChange { at, process } => {
                    if !frac_ok(*at) {
                        Err(format!("arrival change mark must be in [0,1], got {at}"))
                    } else {
                        process.validate()
                    }
                }
                ScriptEvent::Churn { at, .. } => frac_ok(*at)
                    .then_some(())
                    .ok_or_else(|| format!("churn mark must be in [0,1], got {at}")),
                ScriptEvent::DeviceCapStep { at, frac, .. } => (frac_ok(*at) && frac_ok(*frac))
                    .then_some(())
                    .ok_or_else(|| {
                        format!("device cap step needs at/frac in [0,1], got {at}/{frac}")
                    }),
                ScriptEvent::GpuThrottle { at, .. } => frac_ok(*at)
                    .then_some(())
                    .ok_or_else(|| format!("gpu throttle mark must be in [0,1], got {at}")),
            };
            res.map_err(|msg| format!("event {i}: {msg}"))?;
        }
        Ok(())
    }

    /// Instantiates one stateful activity process per contention event
    /// (queried monotonically by environment realization).
    pub fn contention_processes(&self) -> Vec<(ContentionKind, ContentionProcess)> {
        self.events
            .iter()
            .filter_map(|e| match e {
                ScriptEvent::Contention { kind, schedule } => {
                    Some((*kind, ContentionProcess::new(schedule.clone())))
                }
                _ => None,
            })
            .collect()
    }

    /// The contention kinds the script ever activates (deduplicated, in
    /// first-appearance order).
    pub fn contention_kinds(&self) -> Vec<ContentionKind> {
        let mut out: Vec<ContentionKind> = Vec::new();
        for e in &self.events {
            if let ScriptEvent::Contention { kind, .. } = e {
                if !out.contains(kind) {
                    out.push(*kind);
                }
            }
        }
        out
    }

    /// The requirement in force at horizon fraction `t`: every goal
    /// change at or before `t`, applied to `base` in mark order.
    /// Relative floor patches resolve against `span`; without one they
    /// leave the floor untouched (realization refuses that combination
    /// up front, so it only arises in direct queries).
    pub fn goal_at(&self, t: f64, base: &Goal, span: Option<QualitySpan>) -> Goal {
        let mut changes: Vec<(f64, &GoalPatch)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScriptEvent::GoalChange { at, patch } if *at <= t => Some((*at, patch)),
                _ => None,
            })
            .collect();
        changes.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut goal = *base;
        for (_, patch) in changes {
            patch.apply(&mut goal, span);
        }
        goal
    }

    /// The cap ceiling in force at horizon fraction `t`, as a fraction of
    /// the feasible cap range, or `None` when unrestricted.
    pub fn cap_frac_at(&self, t: f64) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None; // (mark, frac)
        for e in &self.events {
            if let ScriptEvent::CapStep { at, frac } = e {
                if *at <= t && best.is_none_or(|(m, _)| *at >= m) {
                    best = Some((*at, *frac));
                }
            }
        }
        match best {
            Some((_, frac)) if frac < 1.0 => Some(frac),
            _ => None,
        }
    }

    /// The cap ceiling in force at horizon fraction `t` for device `d` of
    /// a heterogeneous node, as a fraction of that device's cap range, or
    /// `None` when no [`ScriptEvent::DeviceCapStep`] binds there. The
    /// global [`ScenarioScript::cap_frac_at`] is queried separately by
    /// realization (it applies to device 0 only).
    pub fn device_cap_frac_at(&self, t: f64, d: usize) -> Option<f64> {
        let mut best: Option<(f64, f64)> = None; // (mark, frac)
        for e in &self.events {
            if let ScriptEvent::DeviceCapStep { at, device, frac } = e {
                if *device == d && *at <= t && best.is_none_or(|(m, _)| *at >= m) {
                    best = Some((*at, *frac));
                }
            }
        }
        match best {
            Some((_, frac)) if frac < 1.0 => Some(frac),
            _ => None,
        }
    }

    /// The GPU clock-throttle depth in force at horizon fraction `t`
    /// (levels below the top of the frequency table), or `None` when the
    /// clock is unrestricted. Last throttle wins; `steps = 0` restores.
    pub fn gpu_throttle_at(&self, t: f64) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for e in &self.events {
            if let ScriptEvent::GpuThrottle { at, steps } = e {
                if *at <= t && best.is_none_or(|(m, _)| *at >= m) {
                    best = Some((*at, *steps));
                }
            }
        }
        match best {
            Some((_, steps)) if steps > 0 => Some(steps),
            _ => None,
        }
    }

    /// The input-distribution drift factor at horizon fraction `t`
    /// (product over all ramps).
    pub fn drift_at(&self, t: f64) -> f64 {
        let mut f = 1.0;
        for e in &self.events {
            if let ScriptEvent::DriftRamp { from, to, peak } = e {
                f *= if t <= *from {
                    1.0
                } else if t >= *to {
                    *peak
                } else {
                    1.0 + (peak - 1.0) * (t - from) / (to - from)
                };
            }
        }
        f
    }

    /// The arrival process in force at horizon fraction `t`.
    pub fn arrival_at(&self, t: f64) -> ArrivalProcess {
        let mut best: Option<(f64, ArrivalProcess)> = None;
        for e in &self.events {
            if let ScriptEvent::ArrivalChange { at, process } = e {
                if *at <= t && best.is_none_or(|(m, _)| *at >= m) {
                    best = Some((*at, *process));
                }
            }
        }
        best.map_or(self.arrival, |(_, p)| p)
    }

    /// The churn waves on the timeline, ascending by mark:
    /// `(mark, open, close)`.
    pub fn churn_waves(&self) -> Vec<(f64, usize, usize)> {
        let mut waves: Vec<(f64, usize, usize)> = self
            .events
            .iter()
            .filter_map(|e| match e {
                ScriptEvent::Churn { at, open, close } => Some((*at, *open, *close)),
                _ => None,
            })
            .collect();
        waves.sort_by(|a, b| a.0.total_cmp(&b.0));
        waves
    }

    /// `true` when the script never perturbs anything (the "Default"
    /// environment).
    pub fn is_quiescent(&self) -> bool {
        self.events.is_empty() && self.arrival == ArrivalProcess::Periodic
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::units::Joules;

    fn base_goal() -> Goal {
        Goal::minimize_energy(Seconds(0.4), 0.9)
    }

    #[test]
    fn default_script_is_quiescent() {
        let s = ScenarioScript::default();
        assert!(s.is_quiescent());
        assert!(s.validate().is_ok());
        assert_eq!(s.goal_at(0.5, &base_goal(), None), base_goal());
        assert_eq!(s.cap_frac_at(0.5), None);
        assert_eq!(s.drift_at(0.5), 1.0);
        assert_eq!(s.arrival_at(0.9), ArrivalProcess::Periodic);
        assert!(s.churn_waves().is_empty());
        assert!(!s.uses_trace());
        assert!(!s.uses_relative_floor());
    }

    #[test]
    fn goal_changes_compose_in_mark_order() {
        let s = ScenarioScript::new()
            .with(ScriptEvent::GoalChange {
                at: 0.6,
                patch: GoalPatch::deadline(2.0),
            })
            .with(ScriptEvent::GoalChange {
                at: 0.3,
                patch: GoalPatch::deadline(0.5),
            });
        assert!(s.validate().is_ok());
        assert_eq!(s.goal_at(0.0, &base_goal(), None).deadline, Seconds(0.4));
        assert_eq!(s.goal_at(0.4, &base_goal(), None).deadline, Seconds(0.2));
        // 0.4 × 0.5 × 2.0 — cumulative, independent of event-list order.
        assert!((s.goal_at(1.0, &base_goal(), None).deadline.get() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn goal_patch_moves_floor_and_budget() {
        let s = ScenarioScript::new().with(ScriptEvent::GoalChange {
            at: 0.5,
            patch: GoalPatch {
                min_quality: Some(0.95),
                energy_budget_scale: Some(0.5),
                ..Default::default()
            },
        });
        let g = s.goal_at(0.7, &base_goal(), None);
        assert_eq!(g.min_quality, Some(0.95));
        let err_goal = Goal::minimize_error(Seconds(0.4), Joules(10.0));
        let g = s.goal_at(0.7, &err_goal, None);
        assert_eq!(g.energy_budget, Some(Joules(5.0)));
    }

    #[test]
    fn relative_floor_resolves_against_the_family_span() {
        let s = ScenarioScript::new().with(ScriptEvent::GoalChange {
            at: 0.5,
            patch: GoalPatch::floor_frac(0.75),
        });
        assert!(s.validate().is_ok());
        assert!(s.uses_relative_floor());
        // An image-quality span and a negative-perplexity span both
        // resolve inside their own range — the same named scenario works
        // for either family.
        let image = QualitySpan::new(0.855, 0.935);
        let g = s.goal_at(0.7, &base_goal(), Some(image));
        assert!((g.min_quality.unwrap() - 0.915).abs() < 1e-12);
        let nlp = QualitySpan::new(-160.0, -120.0);
        let g = s.goal_at(0.7, &base_goal(), Some(nlp));
        assert!((g.min_quality.unwrap() - -130.0).abs() < 1e-12);
        // Without a span the relative patch leaves the floor untouched.
        let g = s.goal_at(0.7, &base_goal(), None);
        assert_eq!(g.min_quality, base_goal().min_quality);
        // Before the mark, nothing changes even with a span.
        let g = s.goal_at(0.3, &base_goal(), Some(image));
        assert_eq!(g.min_quality, base_goal().min_quality);
    }

    #[test]
    fn relative_floor_validation() {
        let out_of_range = ScenarioScript::new().with(ScriptEvent::GoalChange {
            at: 0.5,
            patch: GoalPatch::floor_frac(1.5),
        });
        assert!(out_of_range.validate().is_err());
        let both = ScenarioScript::new().with(ScriptEvent::GoalChange {
            at: 0.5,
            patch: GoalPatch {
                min_quality: Some(0.9),
                min_quality_frac: Some(0.5),
                ..Default::default()
            },
        });
        assert!(both.validate().is_err());
    }

    #[test]
    fn trace_arrivals_require_an_attached_source() {
        use crate::trace::{TraceFit, TraceSource, TraceStep};
        let bare = ScenarioScript::new().with_arrival(ArrivalProcess::Trace {
            fit: TraceFit::Loop,
        });
        assert!(bare.uses_trace());
        assert!(bare.validate().is_err(), "no source attached");
        let source = TraceSource::new(
            "t",
            vec![TraceStep {
                inter_arrival: Seconds(0.3),
                scale: 1.1,
            }],
        );
        let attached = bare.with_trace(source.clone());
        assert!(attached.validate().is_ok());
        assert_eq!(attached.trace_fits(), vec![TraceFit::Loop]);
        // A mid-stream switch to trace replay is also detected.
        let switched = ScenarioScript::new()
            .with(ScriptEvent::ArrivalChange {
                at: 0.5,
                process: ArrivalProcess::Trace {
                    fit: TraceFit::Stretch,
                },
            })
            .with_trace(source);
        assert!(switched.validate().is_ok());
        assert_eq!(switched.trace_fits(), vec![TraceFit::Stretch]);
        // An attached but degenerate source is rejected outright.
        let empty = ScenarioScript::new().with_trace(TraceSource::new("e", vec![]));
        assert!(empty.validate().is_err());
    }

    #[test]
    fn cap_steps_last_one_wins_and_one_restores() {
        let s = ScenarioScript::new()
            .with(ScriptEvent::CapStep { at: 0.2, frac: 0.3 })
            .with(ScriptEvent::CapStep { at: 0.6, frac: 1.0 });
        assert_eq!(s.cap_frac_at(0.1), None);
        assert_eq!(s.cap_frac_at(0.4), Some(0.3));
        assert_eq!(s.cap_frac_at(0.8), None, "frac 1.0 restores");
    }

    #[test]
    fn device_cap_steps_bind_per_device_and_last_one_wins() {
        let s = ScenarioScript::new()
            .with(ScriptEvent::DeviceCapStep {
                at: 0.2,
                device: 1,
                frac: 0.4,
            })
            .with(ScriptEvent::DeviceCapStep {
                at: 0.6,
                device: 1,
                frac: 1.0,
            })
            .with(ScriptEvent::DeviceCapStep {
                at: 0.3,
                device: 0,
                frac: 0.5,
            });
        assert!(s.validate().is_ok());
        assert_eq!(s.device_cap_frac_at(0.1, 1), None);
        assert_eq!(s.device_cap_frac_at(0.4, 1), Some(0.4));
        assert_eq!(s.device_cap_frac_at(0.8, 1), None, "frac 1.0 restores");
        // Device targeting is exact: device 0's step never leaks to 1.
        assert_eq!(s.device_cap_frac_at(0.4, 0), Some(0.5));
        assert_eq!(s.device_cap_frac_at(0.4, 2), None);
        // The global cap query ignores device-targeted steps entirely.
        assert_eq!(s.cap_frac_at(0.4), None);
    }

    #[test]
    fn gpu_throttle_last_one_wins_and_zero_restores() {
        let s = ScenarioScript::new()
            .with(ScriptEvent::GpuThrottle { at: 0.3, steps: 8 })
            .with(ScriptEvent::GpuThrottle { at: 0.7, steps: 0 });
        assert!(s.validate().is_ok());
        assert_eq!(s.gpu_throttle_at(0.1), None);
        assert_eq!(s.gpu_throttle_at(0.5), Some(8));
        assert_eq!(s.gpu_throttle_at(0.9), None, "steps 0 restores");
    }

    #[test]
    fn device_events_validate_marks() {
        let bad_mark = ScenarioScript::new().with(ScriptEvent::DeviceCapStep {
            at: 1.5,
            device: 1,
            frac: 0.5,
        });
        assert!(bad_mark.validate().is_err());
        let bad_frac = ScenarioScript::new().with(ScriptEvent::DeviceCapStep {
            at: 0.5,
            device: 1,
            frac: -0.1,
        });
        assert!(bad_frac.validate().is_err());
        let bad_throttle = ScenarioScript::new().with(ScriptEvent::GpuThrottle {
            at: f64::NAN,
            steps: 2,
        });
        assert!(bad_throttle.validate().is_err());
    }

    #[test]
    fn drift_ramps_interpolate_and_hold() {
        let s = ScenarioScript::new().with(ScriptEvent::DriftRamp {
            from: 0.2,
            to: 0.6,
            peak: 2.0,
        });
        assert_eq!(s.drift_at(0.1), 1.0);
        assert!((s.drift_at(0.4) - 1.5).abs() < 1e-12);
        assert_eq!(s.drift_at(0.9), 2.0);
    }

    #[test]
    fn arrival_switches_at_marks() {
        let burst = ArrivalProcess::Bursty {
            burst: 4,
            spread: 0.25,
        };
        let s = ScenarioScript::new().with(ScriptEvent::ArrivalChange {
            at: 0.5,
            process: burst,
        });
        assert_eq!(s.arrival_at(0.4), ArrivalProcess::Periodic);
        assert_eq!(s.arrival_at(0.6), burst);
    }

    #[test]
    fn bursty_sampler_conserves_mean_load() {
        let mut sampler = ArrivalSampler::new();
        let p = ArrivalProcess::Bursty {
            burst: 4,
            spread: 0.25,
        };
        let d = Seconds(0.4);
        let total: f64 = (0..8).map(|_| sampler.next_period(&p, d, 0.0).get()).sum();
        // Two full cycles of 4 inputs each average one deadline per input.
        assert!((total - 8.0 * 0.4).abs() < 1e-12, "total {total}");
    }

    #[test]
    fn poisson_sampler_is_positive_and_mean_matches() {
        let mut sampler = ArrivalSampler::new();
        let p = ArrivalProcess::Poisson { rate_scale: 2.0 };
        let d = Seconds(0.4);
        let mut rng = alert_stats::rng::stream_rng(7, "arrival-test");
        use rand::Rng;
        let n = 4000;
        let mut total = 0.0;
        for _ in 0..n {
            let u: f64 = rng.gen_range(0.0..1.0);
            let period = sampler.next_period(&p, d, u);
            assert!(period.get() > 0.0);
            total += period.get();
        }
        let mean = total / n as f64;
        assert!((mean - 0.2).abs() < 0.02, "mean inter-arrival {mean}");
    }

    #[test]
    fn validation_rejects_bad_events() {
        let bad = [
            ScenarioScript::new().with(ScriptEvent::CapStep { at: 1.5, frac: 0.5 }),
            ScenarioScript::new().with(ScriptEvent::CapStep {
                at: 0.5,
                frac: -0.1,
            }),
            ScenarioScript::new().with(ScriptEvent::GoalChange {
                at: 0.5,
                patch: GoalPatch::deadline(0.0),
            }),
            ScenarioScript::new().with(ScriptEvent::DriftRamp {
                from: 0.8,
                to: 0.2,
                peak: 1.5,
            }),
            ScenarioScript::new().with(ScriptEvent::ArrivalChange {
                at: 0.5,
                process: ArrivalProcess::Bursty {
                    burst: 0,
                    spread: 0.5,
                },
            }),
            ScenarioScript::new().with_arrival(ArrivalProcess::Poisson { rate_scale: -1.0 }),
        ];
        for s in bad {
            assert!(s.validate().is_err(), "{s:?} should be rejected");
        }
    }

    #[test]
    fn serde_roundtrip_is_bit_exact() {
        let s = ScenarioScript::new()
            .with_arrival(ArrivalProcess::Poisson { rate_scale: 1.25 })
            .with(ScriptEvent::Contention {
                kind: ContentionKind::Memory,
                schedule: PhaseSchedule::Random {
                    on: (Seconds(8.0), Seconds(20.0)),
                    off: (Seconds(6.0), Seconds(16.0)),
                    seed: 11,
                },
            })
            .with(ScriptEvent::CapStep {
                at: 0.25,
                frac: 0.3,
            })
            .with(ScriptEvent::GoalChange {
                at: 0.5,
                patch: GoalPatch {
                    deadline_scale: 0.6,
                    min_quality: Some(0.92),
                    min_quality_frac: None,
                    energy_budget_scale: Some(0.8),
                },
            })
            .with(ScriptEvent::DriftRamp {
                from: 0.2,
                to: 0.8,
                peak: 1.7,
            })
            .with(ScriptEvent::Churn {
                at: 0.5,
                open: 4,
                close: 2,
            });
        let json = serde_json::to_string(&s).unwrap();
        let back: ScenarioScript = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        // Bit-exactness of the floats, not just PartialEq.
        assert_eq!(json, serde_json::to_string(&back).unwrap());
    }
}
