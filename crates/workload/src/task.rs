//! The paper's inference tasks and their input variability.
//!
//! Paper Table 2: IMG1 (VGG16), IMG2 (ResNet50) on ImageNet; NLP1
//! (RNN sentence prediction on Penn Treebank); NLP2 (BERT question
//! answering on SQuAD). The controller never sees inputs — only their
//! effect on latency — so a task here is a *distribution of per-input
//! latency scale factors* plus, for NLP1, the grouping of words into
//! sentences.
//!
//! The variance structure follows paper Fig. 4: image classification and
//! BERT vary mildly across inputs; NLP1's large variance "is mainly caused
//! by different input lengths" (word latency varies with context length).

use alert_models::zoo;
use alert_models::ModelProfile;
use alert_stats::rng::{sample_lognormal, sample_truncated_normal, stream_rng};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Identifier of an evaluation task (paper Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TaskId {
    /// Image classification with VGG16.
    Img1,
    /// Image classification with ResNet50.
    Img2,
    /// Sentence prediction with a word-level RNN (Penn Treebank).
    Nlp1,
    /// Question answering with BERT (SQuAD).
    Nlp2,
}

impl TaskId {
    /// All tasks in Table 2 order.
    pub const ALL: [TaskId; 4] = [TaskId::Img1, TaskId::Img2, TaskId::Nlp1, TaskId::Nlp2];

    /// The task's reference model.
    pub fn reference_model(&self) -> ModelProfile {
        match self {
            TaskId::Img1 => zoo::vgg16(),
            TaskId::Img2 => zoo::resnet50(),
            TaskId::Nlp1 => zoo::rnn_ptb(),
            TaskId::Nlp2 => zoo::bert_base(),
        }
    }

    /// Whether inputs arrive grouped (words into sentences) and share a
    /// deadline.
    pub fn grouped(&self) -> bool {
        matches!(self, TaskId::Nlp1)
    }

    /// Samples one per-input latency scale factor.
    pub fn sample_scale<R: Rng>(&self, rng: &mut R) -> f64 {
        match self {
            // Images: tight truncated normal — inference cost is nearly
            // input-independent.
            TaskId::Img1 | TaskId::Img2 => sample_truncated_normal(rng, 1.0, 0.04, 0.85, 1.5),
            // Word-level RNN: moderate per-word spread (context length).
            TaskId::Nlp1 => sample_lognormal(rng, 0.0, 0.18).clamp(0.5, 3.5),
            // BERT: passage length varies; wider than images, narrower
            // than NLP1 word streams aggregated at sentence level.
            TaskId::Nlp2 => sample_lognormal(rng, 0.0, 0.25).clamp(0.4, 4.0),
        }
    }

    /// Samples a sentence length in words (NLP1 only; others return 1).
    pub fn sample_group_len<R: Rng>(&self, rng: &mut R) -> usize {
        if !self.grouped() {
            return 1;
        }
        // Penn Treebank sentences: mean ≈ 21 words, long tail, clamped.
        let len = sample_lognormal(rng, 2.95, 0.45);
        (len.round() as usize).clamp(3, 60)
    }
}

impl std::fmt::Display for TaskId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskId::Img1 => write!(f, "IMG1"),
            TaskId::Img2 => write!(f, "IMG2"),
            TaskId::Nlp1 => write!(f, "NLP1"),
            TaskId::Nlp2 => write!(f, "NLP2"),
        }
    }
}

/// Convenience: a seeded RNG for a task's input stream.
pub fn task_rng(task: TaskId, seed: u64) -> rand::rngs::StdRng {
    stream_rng(seed, &format!("task-{task}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use alert_stats::summary::Welford;

    #[test]
    fn reference_models_match_table2() {
        assert_eq!(TaskId::Img1.reference_model().name, "vgg_16");
        assert_eq!(TaskId::Img2.reference_model().name, "resnet_v1_50");
        assert_eq!(TaskId::Nlp1.reference_model().name, "rnn_ptb_w1024");
        assert_eq!(TaskId::Nlp2.reference_model().name, "bert_base_squad");
    }

    #[test]
    fn only_nlp1_is_grouped() {
        assert!(TaskId::Nlp1.grouped());
        for t in [TaskId::Img1, TaskId::Img2, TaskId::Nlp2] {
            assert!(!t.grouped());
            let mut rng = task_rng(t, 1);
            assert_eq!(t.sample_group_len(&mut rng), 1);
        }
    }

    #[test]
    fn image_variance_is_small_nlp_large() {
        // Paper Fig. 4: "the inference variation among inputs is
        // relatively small ... except for NLP1".
        let cv = |t: TaskId| {
            let mut rng = task_rng(t, 7);
            let mut w = Welford::new();
            for _ in 0..20_000 {
                w.push(t.sample_scale(&mut rng));
            }
            w.std_dev() / w.mean()
        };
        let img = cv(TaskId::Img2);
        let nlp = cv(TaskId::Nlp1);
        let qa = cv(TaskId::Nlp2);
        assert!(img < 0.06, "image cv = {img}");
        assert!(nlp > 0.12, "nlp cv = {nlp}");
        assert!(qa > img && qa < 0.35, "qa cv = {qa}");
    }

    #[test]
    fn scales_are_bounded_and_positive() {
        for t in TaskId::ALL {
            let mut rng = task_rng(t, 3);
            for _ in 0..5000 {
                let s = t.sample_scale(&mut rng);
                assert!(s > 0.0 && s < 5.0, "{t}: scale {s}");
            }
        }
    }

    #[test]
    fn sentence_lengths_plausible() {
        let mut rng = task_rng(TaskId::Nlp1, 11);
        let mut w = Welford::new();
        for _ in 0..5000 {
            let l = TaskId::Nlp1.sample_group_len(&mut rng);
            assert!((3..=60).contains(&l));
            w.push(l as f64);
        }
        assert!(
            w.mean() > 12.0 && w.mean() < 30.0,
            "mean len = {}",
            w.mean()
        );
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let draw = |seed| {
            let mut rng = task_rng(TaskId::Img1, seed);
            (0..16)
                .map(|_| TaskId::Img1.sample_scale(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }
}
