//! Run-time environment scenarios.
//!
//! Paper Table 3 evaluates each scheme in three environments: "Default"
//! (no co-runner), "Memory" (a memory-hungry co-runner that repeatedly
//! stops and starts), and "Compute" (likewise, compute-hungry). Fig. 9
//! additionally uses a single scripted contention window so the reaction
//! of the controller can be inspected input by input.

use alert_platform::contention::{ContentionKind, ContentionProcess, PhaseSchedule};
use alert_stats::units::Seconds;
use serde::{Deserialize, Serialize};

/// A named environment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    contention: Option<(ContentionKind, PhaseSchedule)>,
}

impl Scenario {
    /// The "Default" environment: the inference task runs alone.
    pub fn default_env() -> Self {
        Scenario {
            name: "Default".to_string(),
            contention: None,
        }
    }

    /// The "Memory" environment: a STREAM-like co-runner with random
    /// on/off phases (paper Table 3; phase lengths match the Fig. 9
    /// scale of tens of inputs per phase).
    pub fn memory_env(seed: u64) -> Self {
        Scenario {
            name: "Memory".to_string(),
            contention: Some((
                ContentionKind::Memory,
                PhaseSchedule::Random {
                    on: (Seconds(8.0), Seconds(20.0)),
                    off: (Seconds(6.0), Seconds(16.0)),
                    seed,
                },
            )),
        }
    }

    /// The "Compute" environment: a Bodytrack-like co-runner with random
    /// on/off phases.
    pub fn compute_env(seed: u64) -> Self {
        Scenario {
            name: "Compute".to_string(),
            contention: Some((
                ContentionKind::Compute,
                PhaseSchedule::Random {
                    on: (Seconds(8.0), Seconds(20.0)),
                    off: (Seconds(6.0), Seconds(16.0)),
                    seed,
                },
            )),
        }
    }

    /// The Fig. 9 scenario: one scripted memory-contention window
    /// (`[start, end)` in seconds of episode time).
    pub fn scripted_memory_window(start: Seconds, end: Seconds) -> Self {
        Scenario {
            name: "ScriptedMemory".to_string(),
            contention: Some((
                ContentionKind::Memory,
                PhaseSchedule::Windows(vec![(start, end)]),
            )),
        }
    }

    /// All three Table 3 environments, seeded.
    pub fn table3(seed: u64) -> Vec<Scenario> {
        vec![
            Scenario::default_env(),
            Scenario::compute_env(seed),
            Scenario::memory_env(seed.wrapping_add(1)),
        ]
    }

    /// Scenario name ("Default" / "Compute" / "Memory" / …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The contention kind, if any.
    pub fn kind(&self) -> Option<ContentionKind> {
        self.contention.as_ref().map(|(k, _)| *k)
    }

    /// Instantiates the phase process for one episode run.
    pub fn process(&self) -> Option<(ContentionKind, ContentionProcess)> {
        self.contention
            .as_ref()
            .map(|(k, s)| (*k, ContentionProcess::new(s.clone())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_contention() {
        let s = Scenario::default_env();
        assert!(s.kind().is_none());
        assert!(s.process().is_none());
        assert_eq!(s.name(), "Default");
    }

    #[test]
    fn table3_composition() {
        let envs = Scenario::table3(1);
        assert_eq!(envs.len(), 3);
        assert_eq!(envs[0].name(), "Default");
        assert_eq!(envs[1].name(), "Compute");
        assert_eq!(envs[2].name(), "Memory");
        assert_eq!(envs[1].kind(), Some(ContentionKind::Compute));
        assert_eq!(envs[2].kind(), Some(ContentionKind::Memory));
    }

    #[test]
    fn scripted_window_activates_exactly_there() {
        let s = Scenario::scripted_memory_window(Seconds(2.0), Seconds(5.0));
        let (_, mut p) = s.process().unwrap();
        assert!(!p.active_at(Seconds(1.0)));
        assert!(p.active_at(Seconds(2.0)));
        assert!(p.active_at(Seconds(4.9)));
        assert!(!p.active_at(Seconds(5.0)));
    }

    #[test]
    fn random_envs_differ_by_seed() {
        let a = Scenario::memory_env(1);
        let b = Scenario::memory_env(2);
        assert_ne!(a, b);
    }
}
