//! Named run-time environment scenarios over the scenario-script DSL.
//!
//! Paper Table 3 evaluates each scheme in three environments: "Default"
//! (no co-runner), "Memory" (a memory-hungry co-runner that repeatedly
//! stops and starts), and "Compute" (likewise, compute-hungry). Fig. 9
//! additionally uses a single scripted contention window so the reaction
//! of the controller can be inspected input by input.
//!
//! A [`Scenario`] is now a *name* over a [`ScenarioScript`]: the paper's
//! three environments are scripts with at most one contention event, and
//! [`Scenario::library`] extends them with the dynamic-condition suite
//! the paper's robustness claims are about — cap storms, goal flips,
//! input drift, bursty/Poisson arrivals, session churn, and compound
//! stress. Custom scenarios come from [`Scenario::from_script`] (or
//! straight from JSON: the whole type serializes).

use crate::script::{ArrivalProcess, GoalPatch, ScenarioScript, ScriptEvent};
use crate::trace::{TraceFit, TraceSource};
use alert_platform::contention::{ContentionKind, ContentionProcess, PhaseSchedule};
use alert_stats::units::Seconds;
use serde::{Deserialize, Serialize};

/// The on/off phase ranges of the paper's Table 3 random co-runners
/// (tens of inputs per phase, matching the Fig. 9 scale).
fn table3_schedule(seed: u64) -> PhaseSchedule {
    PhaseSchedule::Random {
        on: (Seconds(8.0), Seconds(20.0)),
        off: (Seconds(6.0), Seconds(16.0)),
        seed,
    }
}

/// A named environment scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    name: String,
    script: ScenarioScript,
}

impl Scenario {
    /// A scenario from an explicit script (the custom-scenario path; see
    /// `examples/scenario_script.rs`).
    pub fn from_script(name: impl Into<String>, script: ScenarioScript) -> Self {
        Scenario {
            name: name.into(),
            script,
        }
    }

    /// The "Default" environment: the inference task runs alone.
    pub fn default_env() -> Self {
        Scenario::from_script("Default", ScenarioScript::new())
    }

    /// The "Memory" environment: a STREAM-like co-runner with random
    /// on/off phases (paper Table 3).
    pub fn memory_env(seed: u64) -> Self {
        Scenario::from_script(
            "Memory",
            ScenarioScript::new().with(ScriptEvent::Contention {
                kind: ContentionKind::Memory,
                schedule: table3_schedule(seed),
            }),
        )
    }

    /// The "Compute" environment: a Bodytrack-like co-runner with random
    /// on/off phases.
    pub fn compute_env(seed: u64) -> Self {
        Scenario::from_script(
            "Compute",
            ScenarioScript::new().with(ScriptEvent::Contention {
                kind: ContentionKind::Compute,
                schedule: table3_schedule(seed),
            }),
        )
    }

    /// The Fig. 9 scenario: one scripted memory-contention window
    /// (`[start, end)` in seconds of episode time).
    pub fn scripted_memory_window(start: Seconds, end: Seconds) -> Self {
        Scenario::from_script(
            "ScriptedMemory",
            ScenarioScript::new().with(ScriptEvent::Contention {
                kind: ContentionKind::Memory,
                schedule: PhaseSchedule::Windows(vec![(start, end)]),
            }),
        )
    }

    /// "CapStorm": the platform's enforced power ceiling repeatedly
    /// crashes to a fraction of the range and recovers — the paper's
    /// power-cap-change robustness axis, turned up.
    pub fn cap_storm() -> Self {
        let steps = [
            (0.15, 0.35),
            (0.30, 1.0),
            (0.45, 0.20),
            (0.60, 1.0),
            (0.75, 0.40),
            (0.90, 1.0),
        ];
        let mut script = ScenarioScript::new();
        for (at, frac) in steps {
            script = script.with(ScriptEvent::CapStep { at, frac });
        }
        Scenario::from_script("CapStorm", script)
    }

    /// "GoalFlip": the user tightens the deadline to 0.6× mid-stream and
    /// relaxes it back — the §5 goal-change axis.
    pub fn goal_flip() -> Self {
        Scenario::from_script(
            "GoalFlip",
            ScenarioScript::new()
                .with(ScriptEvent::GoalChange {
                    at: 0.33,
                    patch: GoalPatch::deadline(0.6),
                })
                .with(ScriptEvent::GoalChange {
                    at: 0.66,
                    patch: GoalPatch::deadline(1.0 / 0.6),
                }),
        )
    }

    /// "FloorRaise": the user raises the quality floor to 85% of the
    /// candidate family's achievable range for the second half of the
    /// episode. The floor is *relative* ([`GoalPatch::floor_frac`]), so
    /// the same named scenario binds for image-quality families and
    /// negative-perplexity families alike; realizing it requires a
    /// [`crate::QualitySpan`] (the runtime passes the serving family's
    /// span automatically).
    pub fn floor_raise() -> Self {
        Scenario::from_script(
            "FloorRaise",
            ScenarioScript::new().with(ScriptEvent::GoalChange {
                at: 0.5,
                patch: GoalPatch::floor_frac(0.85),
            }),
        )
    }

    /// A trace-replay scenario: the recorded log `source` supplies every
    /// input's inter-arrival time and latency scale, fitted onto the
    /// horizon by `fit`; everything else is quiescent.
    pub fn replay(name: impl Into<String>, source: TraceSource, fit: TraceFit) -> Self {
        Scenario::replay_under(name, source, fit, ScenarioScript::new())
    }

    /// A *counterfactual* trace replay: the recorded arrivals and scales
    /// from `source`, re-run under `script`'s events (cap steps, goal
    /// patches, drift, contention) — "what would this traffic have
    /// experienced if …". The script's arrival timeline is overridden to
    /// the trace replay.
    pub fn replay_under(
        name: impl Into<String>,
        source: TraceSource,
        fit: TraceFit,
        script: ScenarioScript,
    ) -> Self {
        Scenario::from_script(
            name,
            script
                .with_arrival(ArrivalProcess::Trace { fit })
                .with_trace(source),
        )
    }

    /// "DriftRamp": the input distribution drifts — per-input latency
    /// scale ramps to 1.7× over the middle half of the episode (cf.
    /// sentences growing longer, paper Fig. 4's variability axis).
    pub fn drift_ramp() -> Self {
        Scenario::from_script(
            "DriftRamp",
            ScenarioScript::new().with(ScriptEvent::DriftRamp {
                from: 0.25,
                to: 0.75,
                peak: 1.7,
            }),
        )
    }

    /// "BurstArrival": periodic arrivals collapse into 4-input bursts for
    /// the middle of the episode, then recover.
    pub fn burst_arrival() -> Self {
        Scenario::from_script(
            "BurstArrival",
            ScenarioScript::new()
                .with(ScriptEvent::ArrivalChange {
                    at: 0.3,
                    process: ArrivalProcess::Bursty {
                        burst: 4,
                        spread: 0.3,
                    },
                })
                .with(ScriptEvent::ArrivalChange {
                    at: 0.7,
                    process: ArrivalProcess::Periodic,
                }),
        )
    }

    /// "PoissonArrival": the dispatch grid switches to memoryless
    /// arrivals at the same offered load.
    pub fn poisson_arrival() -> Self {
        Scenario::from_script(
            "PoissonArrival",
            ScenarioScript::new().with(ScriptEvent::ArrivalChange {
                at: 0.25,
                process: ArrivalProcess::Poisson { rate_scale: 1.0 },
            }),
        )
    }

    /// "Churn": session open/close waves against the serving runtime,
    /// under light memory contention.
    pub fn churn(seed: u64) -> Self {
        let mut script = ScenarioScript::new().with(ScriptEvent::Contention {
            kind: ContentionKind::Memory,
            schedule: table3_schedule(seed),
        });
        for at in [0.2, 0.5, 0.8] {
            script = script.with(ScriptEvent::Churn {
                at,
                open: 6,
                close: 6,
            });
        }
        Scenario::from_script("Churn", script)
    }

    /// "CompoundStress": everything at once — both co-runner kinds, a
    /// cap crash, a goal tightening, input drift, and bursty arrivals.
    pub fn compound_stress(seed: u64) -> Self {
        Scenario::from_script(
            "CompoundStress",
            ScenarioScript::new()
                .with(ScriptEvent::Contention {
                    kind: ContentionKind::Memory,
                    schedule: table3_schedule(seed),
                })
                .with(ScriptEvent::Contention {
                    kind: ContentionKind::Compute,
                    schedule: table3_schedule(seed.wrapping_add(17)),
                })
                .with(ScriptEvent::CapStep {
                    at: 0.40,
                    frac: 0.45,
                })
                .with(ScriptEvent::CapStep {
                    at: 0.75,
                    frac: 1.0,
                })
                .with(ScriptEvent::GoalChange {
                    at: 0.5,
                    patch: GoalPatch::deadline(0.8),
                })
                .with(ScriptEvent::DriftRamp {
                    from: 0.2,
                    to: 0.8,
                    peak: 1.4,
                })
                .with(ScriptEvent::ArrivalChange {
                    at: 0.35,
                    process: ArrivalProcess::Bursty {
                        burst: 3,
                        spread: 0.4,
                    },
                })
                .with(ScriptEvent::Churn {
                    at: 0.5,
                    open: 4,
                    close: 4,
                }),
        )
    }

    /// "HeteroServing": the CPU+GPU serving scenario — memory contention
    /// waves on the node, a mid-episode GPU clock throttle (thermal-style,
    /// eight steps down the frequency table, recovering late), and a cap
    /// crash targeted at device 1 only. On a single-device node every
    /// device-targeted event is inert by construction (see the script
    /// DSL docs), so the scenario also runs — as plain memory contention
    /// — through the CPU-only gates.
    pub fn hetero_serving(seed: u64) -> Self {
        Scenario::from_script(
            "HeteroServing",
            ScenarioScript::new()
                .with(ScriptEvent::Contention {
                    kind: ContentionKind::Memory,
                    schedule: table3_schedule(seed),
                })
                .with(ScriptEvent::GpuThrottle { at: 0.35, steps: 8 })
                .with(ScriptEvent::GpuThrottle { at: 0.75, steps: 0 })
                .with(ScriptEvent::DeviceCapStep {
                    at: 0.5,
                    device: 1,
                    frac: 0.4,
                })
                .with(ScriptEvent::DeviceCapStep {
                    at: 0.8,
                    device: 1,
                    frac: 1.0,
                }),
        )
    }

    /// All three Table 3 environments, seeded.
    pub fn table3(seed: u64) -> Vec<Scenario> {
        vec![
            Scenario::default_env(),
            Scenario::compute_env(seed),
            Scenario::memory_env(seed.wrapping_add(1)),
        ]
    }

    /// The full named-scenario library (the Table 3 trio plus the
    /// dynamic-condition suite) — the rows of the scheme×scenario matrix
    /// (`alert-bench --bin scenarios`).
    pub fn library(seed: u64) -> Vec<Scenario> {
        vec![
            Scenario::default_env(),
            Scenario::compute_env(seed),
            Scenario::memory_env(seed.wrapping_add(1)),
            Scenario::cap_storm(),
            Scenario::goal_flip(),
            Scenario::floor_raise(),
            Scenario::drift_ramp(),
            Scenario::burst_arrival(),
            Scenario::poisson_arrival(),
            Scenario::churn(seed.wrapping_add(2)),
            Scenario::compound_stress(seed.wrapping_add(3)),
            Scenario::hetero_serving(seed.wrapping_add(4)),
        ]
    }

    /// Scenario name ("Default" / "Compute" / "Memory" / "CapStorm" / …).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The underlying script.
    pub fn script(&self) -> &ScenarioScript {
        &self.script
    }

    /// The primary contention kind (first contention event), if any.
    /// Multi-kind scripts report only the first; use
    /// [`ScenarioScript::contention_kinds`] for the full set.
    pub fn kind(&self) -> Option<ContentionKind> {
        self.script.contention_kinds().first().copied()
    }

    /// Instantiates the phase process of the *primary* contention event
    /// (compatibility accessor; realization uses
    /// [`ScenarioScript::contention_processes`] to honor every event).
    pub fn process(&self) -> Option<(ContentionKind, ContentionProcess)> {
        self.script.contention_processes().into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_no_contention() {
        let s = Scenario::default_env();
        assert!(s.kind().is_none());
        assert!(s.process().is_none());
        assert_eq!(s.name(), "Default");
        assert!(s.script().is_quiescent());
    }

    #[test]
    fn table3_composition() {
        let envs = Scenario::table3(1);
        assert_eq!(envs.len(), 3);
        assert_eq!(envs[0].name(), "Default");
        assert_eq!(envs[1].name(), "Compute");
        assert_eq!(envs[2].name(), "Memory");
        assert_eq!(envs[1].kind(), Some(ContentionKind::Compute));
        assert_eq!(envs[2].kind(), Some(ContentionKind::Memory));
    }

    #[test]
    fn scripted_window_activates_exactly_there() {
        let s = Scenario::scripted_memory_window(Seconds(2.0), Seconds(5.0));
        let (_, mut p) = s.process().unwrap();
        assert!(!p.active_at(Seconds(1.0)));
        assert!(p.active_at(Seconds(2.0)));
        assert!(p.active_at(Seconds(4.9)));
        assert!(!p.active_at(Seconds(5.0)));
    }

    #[test]
    fn random_envs_differ_by_seed() {
        let a = Scenario::memory_env(1);
        let b = Scenario::memory_env(2);
        assert_ne!(a, b);
    }

    #[test]
    fn library_has_twelve_valid_uniquely_named_scenarios() {
        let lib = Scenario::library(7);
        assert_eq!(lib.len(), 12);
        let mut names: Vec<&str> = lib.iter().map(|s| s.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12, "names must be unique");
        for s in &lib {
            s.script()
                .validate()
                .unwrap_or_else(|e| panic!("library scenario {} failed validation: {e}", s.name()));
        }
    }

    #[test]
    fn floor_raise_is_relative_and_family_generic() {
        let s = Scenario::floor_raise();
        assert!(s.script().uses_relative_floor());
        assert!(s.script().validate().is_ok());
    }

    #[test]
    fn replay_scenarios_attach_the_trace_and_compose() {
        use crate::trace::TraceStep;
        use alert_stats::units::Seconds as S;
        let source = TraceSource::new(
            "t",
            vec![TraceStep {
                inter_arrival: S(0.2),
                scale: 1.3,
            }],
        );
        let plain = Scenario::replay("TraceReplay", source.clone(), TraceFit::Loop);
        assert!(plain.script().validate().is_ok());
        assert!(plain.script().uses_trace());
        // Counterfactual: the same trace under a cap crash.
        let counter = Scenario::replay_under(
            "TraceUnderCap",
            source,
            TraceFit::Loop,
            ScenarioScript::new().with(ScriptEvent::CapStep { at: 0.2, frac: 0.3 }),
        );
        assert!(counter.script().validate().is_ok());
        assert_eq!(counter.script().cap_frac_at(0.5), Some(0.3));
        // Replay scenarios serialize like any other (self-contained).
        let json = serde_json::to_string(&counter).unwrap();
        let back: Scenario = serde_json::from_str(&json).unwrap();
        assert_eq!(counter, back);
    }

    #[test]
    fn compound_stress_activates_both_kinds() {
        let s = Scenario::compound_stress(3);
        assert_eq!(
            s.script().contention_kinds(),
            vec![ContentionKind::Memory, ContentionKind::Compute]
        );
        // And the primary-kind compatibility view reports Memory.
        assert_eq!(s.kind(), Some(ContentionKind::Memory));
    }

    #[test]
    fn hetero_serving_targets_the_gpu_and_stays_lawful_on_cpu() {
        let s = Scenario::hetero_serving(5);
        assert!(s.script().validate().is_ok());
        // The GPU throttle deepens mid-episode and recovers late.
        assert_eq!(s.script().gpu_throttle_at(0.5), Some(8));
        assert_eq!(s.script().gpu_throttle_at(0.9), None, "steps 0 restores");
        // The cap crash binds to device 1 only and restores at 0.8.
        assert_eq!(s.script().device_cap_frac_at(0.6, 1), Some(0.4));
        assert_eq!(s.script().device_cap_frac_at(0.6, 0), None);
        assert_eq!(
            s.script().device_cap_frac_at(0.9, 1),
            None,
            "frac 1.0 restores"
        );
        // The global (device-0) cap query never sees the targeted step,
        // so a CPU-only realization degrades to plain memory contention.
        assert_eq!(s.script().cap_frac_at(0.6), None);
        assert_eq!(s.kind(), Some(ContentionKind::Memory));
    }

    #[test]
    fn scenarios_roundtrip_through_json() {
        for s in Scenario::library(11) {
            let json = serde_json::to_string(&s).unwrap();
            let back: Scenario = serde_json::from_str(&json).unwrap();
            assert_eq!(s, back, "{} must round-trip", s.name());
        }
    }
}
