//! Workload traces: capture real request logs, replay them as scenarios.
//!
//! The scenario engine *synthesizes* arrivals (periodic / Poisson /
//! bursty). Production serving is validated against *recorded* traffic:
//! this module defines a versioned, line-delimited trace format plus the
//! replay source that turns a recorded log back into a first-class
//! scenario ([`crate::ScenarioScript`] attaches a [`TraceSource`] and
//! sets [`crate::ArrivalProcess::Trace`]).
//!
//! ## Format (version 1)
//!
//! A trace file is UTF-8 JSON-lines:
//!
//! * line 1 — the [`TraceHeader`]: `{"format":"alert-trace","version":1,
//!   "source":…,"seed":…}`. Anything else fails with
//!   [`TraceError::NotATrace`]; a known format with an unknown version
//!   fails with [`TraceError::Version`].
//! * every further non-empty line — one [`TraceRecord`]: the session and
//!   stream ids, the per-input sequence number, the **inter-arrival
//!   time** to the next input, the realized **input scale**, the goal in
//!   force at dispatch (deadline / quality floor / energy budget), an
//!   optional **device** (the node device the input was placed on —
//!   absent means device `0`, the primary CPU, which is what every trace
//!   captured before the device axis ran on), and an optional observed
//!   [`TraceOutcome`].
//!
//! The `device` key is a compatible extension *within* version 1: it is
//! omitted when `None`, so device-0-only captures serialize to the exact
//! bytes the pre-device format produced, and old files load with
//! `device: None` and round-trip bit-exactly.
//!
//! Records of different sessions may interleave (the capture order of a
//! multi-session runtime), but each session's records appear in dispatch
//! order — [`WorkloadTrace::replay_source`] extracts one session's
//! sequence without re-sorting.
//!
//! Floats survive the format bit-exactly: values are rendered with
//! Rust's shortest-round-trip `f64` formatting, so capture → save → load
//! → replay reproduces every inter-arrival and scale to the bit — the
//! identity the replay benches and CI gate on.
//!
//! ## Streaming
//!
//! [`TraceWriter`] and [`TraceReader`] stream one record at a time over
//! any `Write`/`BufRead`, so multi-million-input traces never need to
//! live fully in memory; [`WorkloadTrace`] is the materialized
//! convenience for traces that do fit.

use alert_stats::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};
use std::io::{BufRead, Write};
use std::path::Path;

/// Magic tag of the first line of every trace file.
pub const TRACE_FORMAT: &str = "alert-trace";

/// The trace format version this build reads and writes.
pub const TRACE_VERSION: u32 = 1;

/// Trace-subsystem errors. Everything is reported, nothing panics: a
/// malformed or foreign file is an expected runtime condition.
#[derive(Debug)]
pub enum TraceError {
    /// An I/O error while reading or writing.
    Io(std::io::Error),
    /// The file does not start with an `alert-trace` header line.
    NotATrace(String),
    /// The header declares a version this build does not support.
    Version {
        /// Version found in the header.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// A record line failed to parse (1-based line number).
    Malformed {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A record failed to serialize (should not happen for valid data).
    Serialize(String),
    /// The trace (or the requested session within it) has no records.
    Empty,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::NotATrace(why) => write!(f, "not an alert-trace file: {why}"),
            TraceError::Version { found, supported } => write!(
                f,
                "unsupported trace version {found} (this build reads version {supported})"
            ),
            TraceError::Malformed { line, message } => {
                write!(f, "malformed trace record at line {line}: {message}")
            }
            TraceError::Serialize(why) => write!(f, "trace record failed to serialize: {why}"),
            TraceError::Empty => write!(f, "trace holds no records"),
        }
    }
}

impl std::error::Error for TraceError {}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// The first line of a trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceHeader {
    /// Magic tag — always [`TRACE_FORMAT`].
    pub format: String,
    /// Format version — [`TRACE_VERSION`] for files this build writes.
    pub version: u32,
    /// Free-form provenance: the scenario name or runtime the trace was
    /// captured from.
    pub source: String,
    /// The seed of the captured run, when known (re-running the capture
    /// with it reproduces the trace bit-exactly).
    pub seed: Option<u64>,
}

impl TraceHeader {
    /// A version-1 header.
    pub fn new(source: impl Into<String>, seed: Option<u64>) -> Self {
        TraceHeader {
            format: TRACE_FORMAT.to_string(),
            version: TRACE_VERSION,
            source: source.into(),
            seed,
        }
    }
}

/// The observed outcome of one captured input (what the scheduler picked
/// and what the platform delivered) — carried for offline analysis and
/// capture-vs-counterfactual comparisons; replay does not re-impose it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceOutcome {
    /// Model the scheduler picked.
    pub model: String,
    /// Power cap the scheduler programmed.
    pub cap: Watts,
    /// Delivered latency.
    pub latency: Seconds,
    /// Delivered quality score.
    pub quality: f64,
    /// Period energy (run + idle).
    pub energy: Joules,
}

/// One captured input: one line of the trace file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Session the input belonged to (runtime-local id of the capture).
    pub session: u64,
    /// Content-derived stream identity of the session's input stream.
    pub stream: u64,
    /// Input index within the session, ascending per session.
    pub seq: usize,
    /// Time until the session's next input arrived.
    pub inter_arrival: Seconds,
    /// Realized per-input latency scale (stream sample × scripted drift).
    pub scale: f64,
    /// Node device the input was placed on. `None` means device `0`
    /// (the primary CPU): traces captured before the device axis carry
    /// no key at all, and the field is skipped when `None` so such
    /// files round-trip byte-identically.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub device: Option<u64>,
    /// Goal deadline in force at dispatch (before group adjustment).
    pub deadline: Seconds,
    /// Quality floor in force at dispatch, if any.
    pub min_quality: Option<f64>,
    /// Energy budget in force at dispatch, if any.
    pub energy_budget: Option<Joules>,
    /// Observed outcome, when the capture recorded one.
    pub outcome: Option<TraceOutcome>,
}

/// Streams [`TraceRecord`]s to any writer, one JSON line each, after a
/// header line. Constant memory regardless of trace length.
pub struct TraceWriter<W: Write> {
    w: W,
    written: usize,
}

impl<W: Write> TraceWriter<W> {
    /// Starts a trace on `w` by writing the header line.
    pub fn create(mut w: W, header: &TraceHeader) -> Result<Self, TraceError> {
        let line =
            serde_json::to_string(header).map_err(|e| TraceError::Serialize(e.to_string()))?;
        writeln!(w, "{line}")?;
        Ok(TraceWriter { w, written: 0 })
    }

    /// Appends one record line.
    pub fn write(&mut self, record: &TraceRecord) -> Result<(), TraceError> {
        let line =
            serde_json::to_string(record).map_err(|e| TraceError::Serialize(e.to_string()))?;
        writeln!(self.w, "{line}")?;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> usize {
        self.written
    }

    /// Flushes and returns the underlying writer.
    pub fn finish(mut self) -> Result<W, TraceError> {
        self.w.flush()?;
        Ok(self.w)
    }
}

/// Streams [`TraceRecord`]s from any buffered reader, validating the
/// header eagerly (on construction) and each record lazily (per line).
pub struct TraceReader<R: BufRead> {
    lines: std::io::Lines<R>,
    header: TraceHeader,
    line_no: usize,
}

impl<R: BufRead> TraceReader<R> {
    /// Opens a trace: reads and validates the header line.
    pub fn new(r: R) -> Result<Self, TraceError> {
        let mut lines = r.lines();
        let first = lines
            .next()
            .ok_or_else(|| TraceError::NotATrace("empty file".into()))??;
        let header: TraceHeader = serde_json::from_str(&first)
            .map_err(|e| TraceError::NotATrace(format!("unreadable header line: {e}")))?;
        if header.format != TRACE_FORMAT {
            return Err(TraceError::NotATrace(format!(
                "header declares format '{}', expected '{TRACE_FORMAT}'",
                header.format
            )));
        }
        if header.version != TRACE_VERSION {
            return Err(TraceError::Version {
                found: header.version,
                supported: TRACE_VERSION,
            });
        }
        Ok(TraceReader {
            lines,
            header,
            line_no: 1,
        })
    }

    /// The validated header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let line = match self.lines.next()? {
                Ok(l) => l,
                Err(e) => return Some(Err(e.into())),
            };
            self.line_no += 1;
            if line.trim().is_empty() {
                continue; // tolerate blank (e.g. trailing) lines
            }
            return Some(serde_json::from_str::<TraceRecord>(&line).map_err(|e| {
                TraceError::Malformed {
                    line: self.line_no,
                    message: e.to_string(),
                }
            }));
        }
    }
}

/// A fully materialized trace: header plus records in capture order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadTrace {
    header: TraceHeader,
    records: Vec<TraceRecord>,
}

impl WorkloadTrace {
    /// An empty trace with a fresh version-1 header.
    pub fn new(source: impl Into<String>, seed: Option<u64>) -> Self {
        WorkloadTrace {
            header: TraceHeader::new(source, seed),
            records: Vec::new(),
        }
    }

    /// The header.
    pub fn header(&self) -> &TraceHeader {
        &self.header
    }

    /// All records, in capture order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Appends one record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when the trace holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The distinct session ids, in first-appearance order.
    pub fn sessions(&self) -> Vec<u64> {
        let mut seen = std::collections::BTreeSet::new();
        let mut out: Vec<u64> = Vec::new();
        for r in &self.records {
            if seen.insert(r.session) {
                out.push(r.session);
            }
        }
        out
    }

    /// One session's records, in capture (= dispatch) order.
    pub fn session_records(&self, session: u64) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.session == session)
    }

    /// Extracts one session's arrival/scale sequence as a replayable
    /// [`TraceSource`].
    ///
    /// # Errors
    ///
    /// [`TraceError::Empty`] when the trace holds no records for
    /// `session`.
    pub fn replay_source(&self, session: u64) -> Result<TraceSource, TraceError> {
        let steps: Vec<TraceStep> = self
            .session_records(session)
            .map(|r| TraceStep {
                inter_arrival: r.inter_arrival,
                scale: r.scale,
            })
            .collect();
        if steps.is_empty() {
            return Err(TraceError::Empty);
        }
        Ok(TraceSource::new(
            format!("{}#session-{session}", self.header.source),
            steps,
        ))
    }

    /// Streams the whole trace to `w` in the line-delimited format.
    pub fn write_to<W: Write>(&self, w: W) -> Result<(), TraceError> {
        let mut writer = TraceWriter::create(w, &self.header)?;
        for r in &self.records {
            writer.write(r)?;
        }
        writer.finish()?;
        Ok(())
    }

    /// Materializes a trace from a streaming reader.
    pub fn read_from<R: BufRead>(r: R) -> Result<Self, TraceError> {
        let reader = TraceReader::new(r)?;
        let header = reader.header().clone();
        let records = reader.collect::<Result<Vec<_>, _>>()?;
        Ok(WorkloadTrace { header, records })
    }

    /// Writes the trace to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), TraceError> {
        let file = std::fs::File::create(path)?;
        self.write_to(std::io::BufWriter::new(file))
    }

    /// Loads a trace from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = std::fs::File::open(path)?;
        Self::read_from(std::io::BufReader::new(file))
    }
}

/// How a replayed trace is fitted onto a horizon (stream length) that
/// differs from the trace's own length `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceFit {
    /// Wrap around: input `i` replays step `i mod m`. A short trace
    /// repeats; a long one is cut. Always applicable.
    Loop,
    /// Use the trace verbatim: input `i` replays step `i`. Requires
    /// `m ≥ horizon` (environment realization reports the mismatch as a
    /// script error); a longer trace is cut at the horizon.
    Truncate,
    /// Resample the trace onto the horizon: input `i` of `n` replays step
    /// `⌊i·m/n⌋` with its inter-arrival scaled by `m/n`, so the replay
    /// spans the same total duration with the same shape. With `m == n`
    /// the factor is exactly `1.0` and replay is bit-identical.
    Stretch,
}

impl std::fmt::Display for TraceFit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFit::Loop => write!(f, "loop"),
            TraceFit::Truncate => write!(f, "truncate"),
            TraceFit::Stretch => write!(f, "stretch"),
        }
    }
}

/// One replayable step: what environment realization needs per input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TraceStep {
    /// Period until the next input.
    pub inter_arrival: Seconds,
    /// Per-input latency scale (replaces the stream's sampled scale; any
    /// drift scripted on the *replay* composes multiplicatively on top).
    pub scale: f64,
}

/// The arrival/scale sequence of one recorded session, attachable to a
/// [`crate::ScenarioScript`] and replayed by
/// `ArrivalProcess::Trace` (see `alert-sched::env::EpisodeEnv`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSource {
    /// Provenance label (trace source + session).
    pub name: String,
    steps: Vec<TraceStep>,
}

impl TraceSource {
    /// A source from explicit steps.
    pub fn new(name: impl Into<String>, steps: Vec<TraceStep>) -> Self {
        TraceSource {
            name: name.into(),
            steps,
        }
    }

    /// The steps in replay order.
    pub fn steps(&self) -> &[TraceStep] {
        &self.steps
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// `true` when the source has no steps (never valid for replay).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Validates the source for replay: at least one step, every
    /// inter-arrival finite and positive, every scale finite and
    /// positive.
    pub fn validate(&self) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("trace source holds no steps".into());
        }
        for (i, s) in self.steps.iter().enumerate() {
            if !(s.inter_arrival.is_finite() && s.inter_arrival.get() > 0.0) {
                return Err(format!(
                    "trace step {i}: inter-arrival must be positive, got {}",
                    s.inter_arrival
                ));
            }
            if !(s.scale.is_finite() && s.scale > 0.0) {
                return Err(format!(
                    "trace step {i}: scale must be positive, got {}",
                    s.scale
                ));
            }
        }
        Ok(())
    }

    /// Checks that this source can cover `horizon` inputs under `fit`
    /// (only [`TraceFit::Truncate`] can fail, on a too-short trace).
    pub fn check_horizon(&self, horizon: usize, fit: TraceFit) -> Result<(), String> {
        if self.steps.is_empty() {
            return Err("trace source holds no steps".into());
        }
        if fit == TraceFit::Truncate && self.steps.len() < horizon {
            return Err(format!(
                "trace '{}' has {} steps but the horizon needs {horizon} under \
                 truncate fit; use loop or stretch",
                self.name,
                self.steps.len()
            ));
        }
        Ok(())
    }

    /// The step replayed for input `i` of a `horizon`-input stream under
    /// `fit`. Total (never panics); [`TraceSource::check_horizon`] is the
    /// validity gate. When the trace length equals the horizon, every
    /// mode is the bit-exact identity.
    pub fn step(&self, i: usize, horizon: usize, fit: TraceFit) -> TraceStep {
        let m = self.steps.len().max(1);
        match fit {
            TraceFit::Loop => self.steps[i % m],
            TraceFit::Truncate => self.steps[i.min(m - 1)],
            TraceFit::Stretch => {
                let n = horizon.max(1);
                let j = ((i * m) / n).min(m - 1);
                let s = self.steps[j];
                TraceStep {
                    inter_arrival: s.inter_arrival * (m as f64 / n as f64),
                    scale: s.scale,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn record(session: u64, seq: usize, period: f64, scale: f64) -> TraceRecord {
        TraceRecord {
            session,
            stream: 0xfeed,
            seq,
            inter_arrival: Seconds(period),
            scale,
            device: None,
            deadline: Seconds(0.4),
            min_quality: Some(0.9),
            energy_budget: None,
            outcome: Some(TraceOutcome {
                model: "m".into(),
                cap: Watts(70.0),
                latency: Seconds(0.11),
                quality: 0.91,
                energy: Joules(5.5),
            }),
        }
    }

    fn sample_trace() -> WorkloadTrace {
        let mut t = WorkloadTrace::new("UnitTest", Some(7));
        // Awkward floats: the round-trip must be bit-exact, not close.
        t.push(record(0, 0, 0.1 + 0.2, 1.0 / 3.0));
        t.push(record(1, 0, 0.123456789012345, 0.7));
        t.push(record(0, 1, f64::MIN_POSITIVE, 1.9999999999999998));
        t
    }

    #[test]
    fn jsonl_roundtrip_is_bit_exact() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let back = WorkloadTrace::read_from(Cursor::new(&buf)).unwrap();
        assert_eq!(t, back);
        for (a, b) in t.records().iter().zip(back.records()) {
            assert_eq!(
                a.inter_arrival.get().to_bits(),
                b.inter_arrival.get().to_bits()
            );
            assert_eq!(a.scale.to_bits(), b.scale.to_bits());
        }
        // And a second serialization is byte-identical.
        let mut buf2 = Vec::new();
        back.write_to(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn pre_device_records_parse_and_round_trip_byte_identically() {
        // A verbatim line from a trace written before the device axis:
        // no `device` key anywhere.
        let line = r#"{"deadline":0.4,"energy_budget":null,"inter_arrival":0.30000000000000004,"min_quality":0.9,"outcome":{"cap":70,"energy":5.5,"latency":0.11,"model":"m","quality":0.91},"scale":0.3333333333333333,"seq":0,"session":0,"stream":65261}"#;
        let r: TraceRecord = serde_json::from_str(line).unwrap();
        assert_eq!(r.device, None, "missing key must mean the primary CPU");
        assert_eq!(
            serde_json::to_string(&r).unwrap(),
            line,
            "device-less records must re-serialize to the exact v1 bytes"
        );
    }

    #[test]
    fn placed_records_round_trip_their_device() {
        let mut r = record(3, 0, 0.25, 1.0);
        r.device = Some(1);
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("\"device\":1"));
        let back: TraceRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(back.device, Some(1));
        assert_eq!(r, back);
    }

    #[test]
    fn streaming_reader_yields_records_in_order() {
        let t = sample_trace();
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let reader = TraceReader::new(Cursor::new(&buf)).unwrap();
        assert_eq!(reader.header().source, "UnitTest");
        let seqs: Vec<(u64, usize)> = reader
            .map(|r| {
                let r = r.unwrap();
                (r.session, r.seq)
            })
            .collect();
        assert_eq!(seqs, vec![(0, 0), (1, 0), (0, 1)]);
    }

    #[test]
    fn foreign_and_versioned_files_fail_typed() {
        let not_json = "hello world\n";
        assert!(matches!(
            WorkloadTrace::read_from(Cursor::new(not_json)),
            Err(TraceError::NotATrace(_))
        ));
        let wrong_magic = r#"{"format":"other","version":1,"source":"x","seed":null}"#;
        assert!(matches!(
            WorkloadTrace::read_from(Cursor::new(wrong_magic)),
            Err(TraceError::NotATrace(_))
        ));
        let future = r#"{"format":"alert-trace","version":99,"source":"x","seed":null}"#;
        assert!(matches!(
            WorkloadTrace::read_from(Cursor::new(future)),
            Err(TraceError::Version {
                found: 99,
                supported: TRACE_VERSION
            })
        ));
        assert!(matches!(
            WorkloadTrace::read_from(Cursor::new("")),
            Err(TraceError::NotATrace(_))
        ));
    }

    #[test]
    fn malformed_record_lines_carry_line_numbers() {
        let mut buf = Vec::new();
        sample_trace().write_to(&mut buf).unwrap();
        let mut text = String::from_utf8(buf).unwrap();
        text.push_str("{ this is not a record }\n");
        let err = WorkloadTrace::read_from(Cursor::new(text)).unwrap_err();
        match err {
            TraceError::Malformed { line, .. } => assert_eq!(line, 5),
            other => panic!("expected Malformed, got {other}"),
        }
    }

    #[test]
    fn replay_source_extracts_per_session_sequences() {
        let t = sample_trace();
        assert_eq!(t.sessions(), vec![0, 1]);
        let s0 = t.replay_source(0).unwrap();
        assert_eq!(s0.len(), 2);
        assert_eq!(s0.steps()[0].inter_arrival, Seconds(0.1 + 0.2));
        let s1 = t.replay_source(1).unwrap();
        assert_eq!(s1.len(), 1);
        assert!(matches!(t.replay_source(99), Err(TraceError::Empty)));
    }

    #[test]
    fn source_validation_rejects_degenerate_steps() {
        assert!(TraceSource::new("e", vec![]).validate().is_err());
        let bad_period = TraceSource::new(
            "b",
            vec![TraceStep {
                inter_arrival: Seconds(0.0),
                scale: 1.0,
            }],
        );
        assert!(bad_period.validate().is_err());
        let bad_scale = TraceSource::new(
            "b",
            vec![TraceStep {
                inter_arrival: Seconds(0.1),
                scale: f64::NAN,
            }],
        );
        assert!(bad_scale.validate().is_err());
        let ok = TraceSource::new(
            "ok",
            vec![TraceStep {
                inter_arrival: Seconds(0.1),
                scale: 1.0,
            }],
        );
        assert!(ok.validate().is_ok());
    }

    fn steps(periods: &[f64]) -> TraceSource {
        TraceSource::new(
            "fit",
            periods
                .iter()
                .enumerate()
                .map(|(i, &p)| TraceStep {
                    inter_arrival: Seconds(p),
                    scale: 1.0 + i as f64,
                })
                .collect(),
        )
    }

    #[test]
    fn fit_modes_are_identity_when_lengths_match() {
        let src = steps(&[0.1, 0.25, 0.4]);
        for fit in [TraceFit::Loop, TraceFit::Truncate, TraceFit::Stretch] {
            src.check_horizon(3, fit).unwrap();
            for i in 0..3 {
                let s = src.step(i, 3, fit);
                assert_eq!(
                    s.inter_arrival.get().to_bits(),
                    src.steps()[i].inter_arrival.get().to_bits(),
                    "{fit} step {i}"
                );
                assert_eq!(s.scale.to_bits(), src.steps()[i].scale.to_bits());
            }
        }
    }

    #[test]
    fn loop_fit_wraps_short_traces() {
        let src = steps(&[0.1, 0.2]);
        src.check_horizon(5, TraceFit::Loop).unwrap();
        let got: Vec<f64> = (0..5)
            .map(|i| src.step(i, 5, TraceFit::Loop).inter_arrival.get())
            .collect();
        assert_eq!(got, vec![0.1, 0.2, 0.1, 0.2, 0.1]);
    }

    #[test]
    fn truncate_fit_requires_coverage_and_cuts_long_traces() {
        let src = steps(&[0.1, 0.2]);
        assert!(src.check_horizon(3, TraceFit::Truncate).is_err());
        assert!(src.check_horizon(2, TraceFit::Truncate).is_ok());
        // A longer trace is cut: horizon 1 replays only step 0.
        assert!(src.check_horizon(1, TraceFit::Truncate).is_ok());
        assert_eq!(
            src.step(0, 1, TraceFit::Truncate).inter_arrival,
            Seconds(0.1)
        );
    }

    #[test]
    fn stretch_fit_resamples_and_conserves_duration() {
        // 2 steps over a 4-input horizon: each step replayed twice at
        // half its inter-arrival — same total duration.
        let src = steps(&[0.4, 0.8]);
        src.check_horizon(4, TraceFit::Stretch).unwrap();
        let got: Vec<f64> = (0..4)
            .map(|i| src.step(i, 4, TraceFit::Stretch).inter_arrival.get())
            .collect();
        assert_eq!(got, vec![0.2, 0.2, 0.4, 0.4]);
        let total: f64 = got.iter().sum();
        assert!((total - 1.2).abs() < 1e-12);
        // And the other direction: 4 inputs squeezed onto 2 replays the
        // trace at double speed... i.e. 2-input horizon from 4 steps.
        let long = steps(&[0.1, 0.2, 0.3, 0.4]);
        let got: Vec<f64> = (0..2)
            .map(|i| long.step(i, 2, TraceFit::Stretch).inter_arrival.get())
            .collect();
        assert_eq!(got, vec![0.2, 0.6]);
    }

    #[test]
    fn header_serde_shapes() {
        let h = TraceHeader::new("src", None);
        let json = serde_json::to_string(&h).unwrap();
        assert!(json.contains("\"alert-trace\""));
        let back: TraceHeader = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
