//! Per-input records and episode summaries.
//!
//! The harness emits one [`InputRecord`] per processed input and folds the
//! post-warm-up records into an [`EpisodeSummary`]. The summary implements
//! the paper's Table 4 accounting:
//!
//! * a *violation* is an input whose goal constraints were not met
//!   (deadline overrun, quality below the floor, or energy over budget);
//! * a (scheme, setting) combination is *disqualified* when more than 10%
//!   of its inputs are violations — disqualified settings are excluded
//!   from the averages and counted in the table superscripts.

use crate::constraints::{Goal, Objective};
use alert_stats::units::{Joules, Seconds, Watts};
use serde::{Deserialize, Serialize};

/// Fraction of inputs allowed to violate before a setting is disqualified.
pub const VIOLATION_DISQUALIFY_FRACTION: f64 = 0.10;

/// One processed input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputRecord {
    /// Input index within the episode.
    pub index: usize,
    /// Device the input was placed on (`0` = the primary platform;
    /// defaulted so records captured before the device axis deserialize
    /// unchanged).
    #[serde(default)]
    pub device: usize,
    /// Name of the model the scheduler picked.
    pub model: String,
    /// Power setting the scheduler picked.
    pub cap: Watts,
    /// Latency of the answer actually delivered.
    pub latency: Seconds,
    /// The per-input deadline in force (after goal adjustment).
    pub deadline: Seconds,
    /// The *goal* deadline in force at dispatch (before shared-group
    /// budget adjustment) — what a trace capture reports as the
    /// requirement in force.
    pub goal_deadline: Seconds,
    /// Period until the next input arrived (the inter-arrival time /
    /// idle-accounting window): the arrival half of a trace capture.
    pub period: Seconds,
    /// Realized per-input latency scale (stream sample × scripted
    /// drift): the input-weight half of a trace capture.
    pub scale: f64,
    /// The quality floor in force at dispatch (scripted goal changes
    /// move it mid-stream); `None` when the effective goal has no floor.
    pub min_quality: Option<f64>,
    /// The per-period energy budget in force at dispatch; `None` when
    /// the effective goal has no budget.
    pub energy_budget: Option<Joules>,
    /// Quality score of the delivered answer.
    pub quality: f64,
    /// Period energy (run + idle).
    pub energy: Joules,
    /// Observed slowdown sample, if any work completed.
    pub slowdown: Option<f64>,
    /// `true` while the co-runner was active at dispatch time.
    pub contention_active: bool,
    /// `true` if this input is inside the warm-up prefix.
    pub warmup: bool,
}

impl InputRecord {
    /// Whether this input violates the goal's *per-input* constraints:
    /// the deadline (always) and the per-period energy budget
    /// (minimize-error task).
    ///
    /// The accuracy floor is deliberately **not** checked per input: the
    /// controller's Eq. 7 targets *expected* accuracy, and the paper
    /// frames its assurances as probabilistic ("arbitrarily many nines",
    /// §3.6) — a mix of anytime outputs averaging above the floor
    /// satisfies the goal even if individual outputs dip below it. The
    /// floor is enforced at episode level by
    /// [`EpisodeSummary::disqualified`].
    pub fn violates(&self, goal: &Goal) -> bool {
        // Latency is always a constraint (Eqs. 1–2).
        if self.latency.get() > self.deadline.get() * (1.0 + 1e-9) {
            return true;
        }
        match goal.objective {
            Objective::MinimizeEnergy => false,
            Objective::MinimizeError => {
                // The budget *in force at dispatch* wins: scripted goal
                // changes rescale it mid-stream. Records without one
                // (legacy) fall back to the episode goal's.
                let budget = self
                    .energy_budget
                    .or(goal.energy_budget)
                    // lint:allow(no-panic): Goal::validate requires energy_budget for MinimizeError goals
                    .expect("validated goal");
                self.energy.get() > budget.get() * (1.0 + 1e-9)
            }
        }
    }
}

/// Aggregated results of one (scheme, goal, scenario) episode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpisodeSummary {
    /// Number of measured (post-warm-up) inputs.
    pub measured: usize,
    /// Number of measured inputs in violation.
    pub violations: usize,
    /// Mean period energy over measured inputs.
    pub avg_energy: Joules,
    /// Mean quality score over measured inputs.
    pub avg_quality: f64,
    /// Mean delivered latency.
    pub avg_latency: Seconds,
    /// Fraction of measured inputs that missed their deadline.
    pub deadline_miss_rate: f64,
    /// Whether the episode-average quality met the goal's floor (always
    /// `true` for goals without a floor).
    pub quality_floor_met: bool,
    /// Total scheduler overhead time attributed to the episode.
    pub overhead: Seconds,
}

impl EpisodeSummary {
    /// Folds records into a summary under a goal.
    pub fn from_records(records: &[InputRecord], goal: &Goal) -> Self {
        let measured: Vec<&InputRecord> = records.iter().filter(|r| !r.warmup).collect();
        let n = measured.len();
        let violations = measured.iter().filter(|r| r.violates(goal)).count();
        let misses = measured
            .iter()
            .filter(|r| r.latency.get() > r.deadline.get() * (1.0 + 1e-9))
            .count();
        let avg = |f: &dyn Fn(&InputRecord) -> f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                measured.iter().map(|r| f(r)).sum::<f64>() / n as f64
            }
        };
        let avg_quality = avg(&|r| r.quality);
        // The accuracy floor is judged over *timely* deliveries: a
        // deadline miss is already a (latency) violation above, and its
        // collapsed fallback quality must not be double-counted against
        // the accuracy goal as well.
        let timely: Vec<&&InputRecord> = measured
            .iter()
            .filter(|r| r.latency.get() <= r.deadline.get() * (1.0 + 1e-9))
            .collect();
        // The floor in force may move mid-stream (scripted goal
        // changes): judge the average quality against the average of the
        // per-record floors, which degenerates to the classic constant
        // check when the floor never moves.
        let mut q_sum = 0.0;
        let mut floor_sum = 0.0;
        let mut floored = 0usize;
        for r in &timely {
            if let Some(floor) = r.min_quality.or(goal.min_quality) {
                q_sum += r.quality;
                floor_sum += floor;
                floored += 1;
            }
        }
        let quality_floor_met =
            floored == 0 || q_sum / floored as f64 >= floor_sum / floored as f64 - 1e-12;
        EpisodeSummary {
            measured: n,
            violations,
            avg_energy: Joules(avg(&|r| r.energy.get())),
            avg_quality,
            avg_latency: Seconds(avg(&|r| r.latency.get())),
            deadline_miss_rate: if n == 0 {
                0.0
            } else {
                misses as f64 / n as f64
            },
            quality_floor_met,
            overhead: Seconds::ZERO,
        }
    }

    /// Violation fraction among measured inputs.
    pub fn violation_rate(&self) -> f64 {
        if self.measured == 0 {
            0.0
        } else {
            self.violations as f64 / self.measured as f64
        }
    }

    /// Whether this setting is disqualified per the Table 4 protocol:
    /// more than 10% of inputs violated a per-input constraint, or the
    /// episode-average quality fell below the accuracy floor.
    pub fn disqualified(&self) -> bool {
        self.violation_rate() > VIOLATION_DISQUALIFY_FRACTION || !self.quality_floor_met
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(latency: f64, deadline: f64, quality: f64, energy: f64) -> InputRecord {
        InputRecord {
            index: 0,
            device: 0,
            model: "m".into(),
            cap: Watts(50.0),
            latency: Seconds(latency),
            deadline: Seconds(deadline),
            goal_deadline: Seconds(deadline),
            period: Seconds(deadline),
            scale: 1.0,
            min_quality: None,
            energy_budget: None,
            quality,
            energy: Joules(energy),
            slowdown: Some(1.0),
            contention_active: false,
            warmup: false,
        }
    }

    #[test]
    fn violation_rules_min_energy() {
        let goal = Goal::minimize_energy(Seconds(0.1), 0.9);
        assert!(!record(0.09, 0.1, 0.95, 5.0).violates(&goal));
        // Deadline overrun.
        assert!(record(0.11, 0.1, 0.95, 5.0).violates(&goal));
        // Quality below floor is NOT a per-input violation (statistical
        // target, checked at episode level).
        assert!(!record(0.09, 0.1, 0.85, 5.0).violates(&goal));
        // Energy is unconstrained here.
        assert!(!record(0.09, 0.1, 0.95, 1e9).violates(&goal));
    }

    #[test]
    fn effective_budget_in_force_overrides_the_episode_goal() {
        // A scripted goal change halved the budget mid-stream: the
        // record carries the effective budget and is judged against it.
        let goal = Goal::minimize_error(Seconds(0.1), Joules(10.0));
        let mut r = record(0.09, 0.1, 0.9, 5.0);
        assert!(!r.violates(&goal));
        r.energy_budget = Some(Joules(4.0));
        assert!(r.violates(&goal), "the tightened budget must bind");
        r.energy_budget = Some(Joules(6.0));
        assert!(!r.violates(&goal));
    }

    #[test]
    fn moving_quality_floor_binds_in_the_summary() {
        // Floor raised to 0.95 for the second half: constant 0.91
        // quality passes the base 0.90 floor but not the average of the
        // floors in force.
        let goal = Goal::minimize_energy(Seconds(0.1), 0.90);
        let mk = |floor: f64| {
            let mut r = record(0.05, 0.1, 0.91, 5.0);
            r.min_quality = Some(floor);
            r
        };
        let steady: Vec<InputRecord> = (0..10).map(|_| mk(0.90)).collect();
        assert!(EpisodeSummary::from_records(&steady, &goal).quality_floor_met);
        let flipped: Vec<InputRecord> = (0..5)
            .map(|_| mk(0.90))
            .chain((0..5).map(|_| mk(0.95)))
            .collect();
        let summary = EpisodeSummary::from_records(&flipped, &goal);
        assert!(!summary.quality_floor_met, "raised floor must bind");
        assert!(summary.disqualified());
    }

    #[test]
    fn quality_floor_is_episode_average() {
        let goal = Goal::minimize_energy(Seconds(0.1), 0.9);
        // Mix of 0.95 and 0.85 averaging 0.90: floor met, not disqualified.
        let records: Vec<InputRecord> = (0..100)
            .map(|i| record(0.05, 0.1, if i % 2 == 0 { 0.95 } else { 0.85 }, 1.0))
            .collect();
        let s = EpisodeSummary::from_records(&records, &goal);
        assert!(s.quality_floor_met);
        assert!(!s.disqualified());
        // All at 0.85: floor failed → disqualified despite zero per-input
        // violations.
        let records: Vec<InputRecord> = (0..100).map(|_| record(0.05, 0.1, 0.85, 1.0)).collect();
        let s = EpisodeSummary::from_records(&records, &goal);
        assert_eq!(s.violations, 0);
        assert!(!s.quality_floor_met);
        assert!(s.disqualified());
    }

    #[test]
    fn violation_rules_min_error() {
        let goal = Goal::minimize_error(Seconds(0.1), Joules(5.0));
        assert!(!record(0.09, 0.1, 0.2, 4.9).violates(&goal));
        assert!(record(0.09, 0.1, 0.2, 5.1).violates(&goal));
        // Quality is unconstrained here.
        assert!(!record(0.09, 0.1, 0.0, 4.0).violates(&goal));
    }

    #[test]
    fn summary_excludes_warmup() {
        let goal = Goal::minimize_energy(Seconds(0.1), 0.9);
        let mut records = vec![record(0.2, 0.1, 0.95, 100.0); 3];
        for r in &mut records {
            r.warmup = true;
        }
        records.push(record(0.05, 0.1, 0.95, 2.0));
        let s = EpisodeSummary::from_records(&records, &goal);
        assert_eq!(s.measured, 1);
        assert_eq!(s.violations, 0);
        assert!((s.avg_energy.get() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn disqualification_threshold() {
        let goal = Goal::minimize_energy(Seconds(0.1), 0.9);
        let mut records: Vec<InputRecord> =
            (0..100).map(|_| record(0.05, 0.1, 0.95, 1.0)).collect();
        for r in records.iter_mut().take(10) {
            r.latency = Seconds(0.2); // 10% violations: not disqualified
        }
        let s = EpisodeSummary::from_records(&records, &goal);
        assert!((s.violation_rate() - 0.10).abs() < 1e-12);
        assert!(!s.disqualified());
        records[10].latency = Seconds(0.2); // 11%: disqualified
        let s = EpisodeSummary::from_records(&records, &goal);
        assert!(s.disqualified());
    }

    #[test]
    fn empty_records_are_safe() {
        let goal = Goal::minimize_energy(Seconds(0.1), 0.9);
        let s = EpisodeSummary::from_records(&[], &goal);
        assert_eq!(s.measured, 0);
        assert!(!s.disqualified());
        assert_eq!(s.violation_rate(), 0.0);
    }

    #[test]
    fn serde_roundtrip() {
        let goal = Goal::minimize_error(Seconds(0.1), Joules(5.0));
        let s = EpisodeSummary::from_records(&[record(0.09, 0.1, 0.5, 4.0)], &goal);
        let json = serde_json::to_string(&s).unwrap();
        let back: EpisodeSummary = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
