//! Workload substrate for the ALERT reproduction: tasks, input streams,
//! constraint grids, environment scenarios, and per-input records.
//!
//! * [`task`] — the paper's four tasks (IMG1/IMG2/NLP1/NLP2, Table 2) and
//!   their per-input variability: images vary little, sentence prediction
//!   varies a lot with sentence length (paper Fig. 4).
//! * [`stream`] — input streams: periodic image feeds and word streams
//!   grouped into sentences that *share* a deadline (paper §3.2 step 2).
//! * [`constraints`] — goals (minimize energy / minimize error with the
//!   complementary constraints) and the 35-setting constraint grids used
//!   for every Table 4 cell (Table 3 ranges).
//! * [`script`] — the scenario-script DSL: declarative timelines of
//!   contention onset/offset, power-cap steps, goal changes, input drift,
//!   arrival-process switches, and session churn.
//! * [`scenario`] — named scenarios over the DSL: the paper's Default /
//!   Memory / Compute trio, the Fig. 9 scripted window, and the dynamic
//!   stress library (cap-storm, goal-flip, floor-raise, drift-ramp,
//!   burst/Poisson arrivals, churn, compound stress) plus trace-replay
//!   scenarios ([`Scenario::replay`], [`Scenario::replay_under`]).
//! * [`record`] — per-input records and episode summaries with the
//!   paper's violation accounting (>10% of inputs in violation disqualifies
//!   a setting).
//! * [`trace`] — the capture/replay subsystem: a versioned line-delimited
//!   trace format (per-input inter-arrival, scale, goal in force,
//!   observed outcome) with streaming reader/writer, and the
//!   [`TraceSource`] replay path that turns a recorded request log back
//!   into a first-class scenario (`ArrivalProcess::Trace`).
//! * [`admission`] — serving-side artifacts: frozen request storms
//!   (offered-load generation over the same [`ArrivalProcess`] shapes,
//!   one level up — requests instead of inputs) and per-request
//!   admission outcomes with the saturation-curve aggregates.

pub mod admission;
pub mod constraints;
pub mod goal;
pub mod record;
pub mod scenario;
pub mod script;
pub mod session;
pub mod stream;
pub mod task;
pub mod trace;

pub use admission::{
    generate_storm, AdmissionVerdict, RequestArrival, RequestOutcome, ServingReport, StormSpec,
};
pub use constraints::{constraint_grid, quality_span, Goal, Objective};
pub use record::{EpisodeSummary, InputRecord};
pub use scenario::Scenario;
pub use script::{
    ArrivalProcess, ArrivalSampler, GoalPatch, QualitySpan, ScenarioScript, ScriptEvent,
};
pub use session::{SessionId, StreamId};
pub use stream::{GroupPos, InputSpec, InputStream};
pub use task::TaskId;
pub use trace::{
    TraceError, TraceFit, TraceHeader, TraceOutcome, TraceReader, TraceRecord, TraceSource,
    TraceStep, TraceWriter, WorkloadTrace,
};
