//! Input streams.
//!
//! An [`InputStream`] is a pre-sampled sequence of [`InputSpec`]s — the
//! per-input latency scale factors and (for NLP1) the word→sentence
//! grouping. Streams are fully materialized up front from a seed, so
//! every scheme in a comparison processes *bit-identical* inputs, and the
//! oracle can look ahead.
//!
//! Following the paper's methodology (§2.2), the first tenth of every
//! stream is warm-up and excluded from metrics.

use crate::task::{task_rng, TaskId};
use serde::{Deserialize, Serialize};

/// Position of an input inside its group (sentence).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GroupPos {
    /// Index of the group (sentence) in the stream.
    pub group_idx: usize,
    /// Index of this input within the group.
    pub member_idx: usize,
    /// Total members in the group.
    pub group_len: usize,
}

impl GroupPos {
    /// `true` for the final member of the group.
    pub fn is_last(&self) -> bool {
        self.member_idx + 1 == self.group_len
    }
}

/// One input: its latency scale factor and optional grouping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InputSpec {
    /// Multiplies the model's profiled latency for this input.
    pub scale: f64,
    /// Sentence grouping (NLP1), or `None` for independent inputs.
    pub group: Option<GroupPos>,
}

/// A pre-sampled input stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InputStream {
    task: TaskId,
    seed: u64,
    inputs: Vec<InputSpec>,
}

impl InputStream {
    /// Generates a stream of `n` inputs for `task` from `seed`.
    ///
    /// For grouped tasks (NLP1), `n` counts *words*; the final sentence is
    /// truncated to fit and its `group_len` reflects the truncation, so
    /// invariants hold at the stream tail.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn generate(task: TaskId, n: usize, seed: u64) -> Self {
        assert!(n > 0, "empty stream");
        let mut rng = task_rng(task, seed);
        let mut inputs = Vec::with_capacity(n);
        if task.grouped() {
            let mut group_idx = 0;
            while inputs.len() < n {
                let want = task.sample_group_len(&mut rng);
                let len = want.min(n - inputs.len());
                for member_idx in 0..len {
                    inputs.push(InputSpec {
                        scale: task.sample_scale(&mut rng),
                        group: Some(GroupPos {
                            group_idx,
                            member_idx,
                            group_len: len,
                        }),
                    });
                }
                group_idx += 1;
            }
        } else {
            for _ in 0..n {
                inputs.push(InputSpec {
                    scale: task.sample_scale(&mut rng),
                    group: None,
                });
            }
        }
        InputStream { task, seed, inputs }
    }

    /// The task this stream belongs to.
    pub fn task(&self) -> TaskId {
        self.task
    }

    /// The generating seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The stream's content-derived identity (stable across processes:
    /// same task, seed and length → same id).
    pub fn stream_id(&self) -> crate::session::StreamId {
        crate::session::StreamId::derive(self.task as u8, self.seed, self.inputs.len())
    }

    /// The inputs in order.
    pub fn inputs(&self) -> &[InputSpec] {
        &self.inputs
    }

    /// The per-input latency scale factors, in order (the sequence a
    /// trace capture snapshots and a trace replay overrides).
    pub fn scales(&self) -> impl Iterator<Item = f64> + '_ {
        self.inputs.iter().map(|i| i.scale)
    }

    /// Number of inputs.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` when empty (never true post-construction).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Index of the first measured (non-warm-up) input: 1/10 of the stream
    /// is warm-up, per paper §2.2.
    pub fn warmup_len(&self) -> usize {
        self.inputs.len() / 10
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ungrouped_stream_basics() {
        let s = InputStream::generate(TaskId::Img2, 500, 42);
        assert_eq!(s.len(), 500);
        assert_eq!(s.warmup_len(), 50);
        assert!(s.inputs().iter().all(|i| i.group.is_none()));
        assert!(s.inputs().iter().all(|i| i.scale > 0.0));
    }

    #[test]
    fn grouped_stream_has_consistent_groups() {
        let s = InputStream::generate(TaskId::Nlp1, 1000, 42);
        assert_eq!(s.len(), 1000);
        let mut expected_group = 0;
        let mut expected_member = 0;
        for i in s.inputs() {
            let g = i.group.expect("nlp1 inputs are grouped");
            assert_eq!(g.group_idx, expected_group);
            assert_eq!(g.member_idx, expected_member);
            assert!(g.member_idx < g.group_len);
            if g.is_last() {
                expected_group += 1;
                expected_member = 0;
            } else {
                expected_member += 1;
            }
        }
        // Stream ends exactly at a group boundary (truncated final group).
        let last = s.inputs().last().unwrap().group.unwrap();
        assert!(last.is_last());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = InputStream::generate(TaskId::Nlp1, 300, 9);
        let b = InputStream::generate(TaskId::Nlp1, 300, 9);
        assert_eq!(a, b);
        let c = InputStream::generate(TaskId::Nlp1, 300, 10);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "empty stream")]
    fn rejects_empty() {
        let _ = InputStream::generate(TaskId::Img1, 0, 1);
    }

    #[test]
    fn truncated_final_group_len_is_reachable() {
        // Tiny stream: one sentence truncated to 5 words.
        let s = InputStream::generate(TaskId::Nlp1, 5, 3);
        for i in s.inputs() {
            let g = i.group.unwrap();
            assert!(g.group_len <= 5);
        }
    }
}
