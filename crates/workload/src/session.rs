//! Session and stream identities for the multi-stream runtime.
//!
//! A *stream* is a reproducible input sequence (task + seed); a *session*
//! is one live traversal of a stream by one scheduler inside a runtime.
//! Two sessions may traverse the same stream (e.g. two schemes compared
//! on frozen conditions), so the identities are distinct types: stream
//! ids are *content-derived* and stable across processes, session ids
//! are runtime-local handles.

use serde::{Deserialize, Serialize};

/// Runtime-local handle of one live session.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SessionId(pub u64);

impl SessionId {
    /// The worker shard owning this session under a `shards`-way
    /// partition: plain modulo, so a sharded runtime that allocates ids
    /// with stride `shards` (shard `k` hands out `k, k + shards, …`)
    /// routes every id back to its owner without a lookup table.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero (a partition needs at least one shard
    /// — a construction-time programming error, not a runtime
    /// condition).
    pub fn shard_of(&self, shards: usize) -> usize {
        assert!(shards > 0, "a partition needs at least one shard");
        (self.0 % shards as u64) as usize
    }
}

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// Content-derived identity of an input stream: equal streams (same task,
/// same seed, same length) get equal ids in every process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StreamId(pub u64);

impl StreamId {
    /// Derives the id from the stream's generating parameters, through
    /// the workspace's canonical stream-derivation hash
    /// ([`alert_stats::rng::derive_seed`]).
    pub fn derive(task_tag: u8, seed: u64, len: usize) -> Self {
        let label = format!("stream/{task_tag}/{len}");
        StreamId(alert_stats::rng::derive_seed(seed, &label))
    }
}

impl std::fmt::Display for StreamId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stream-{:016x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_ids_are_stable_and_distinct() {
        let a = StreamId::derive(1, 42, 300);
        let b = StreamId::derive(1, 42, 300);
        let c = StreamId::derive(1, 43, 300);
        let d = StreamId::derive(2, 42, 300);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SessionId(3).to_string(), "session-3");
        assert!(StreamId::derive(0, 0, 1).to_string().starts_with("stream-"));
    }

    #[test]
    fn shard_routing_is_modular() {
        assert_eq!(SessionId(0).shard_of(4), 0);
        assert_eq!(SessionId(7).shard_of(4), 3);
        assert_eq!(SessionId(8).shard_of(4), 0);
        // Stride-allocated ids route back to their allocating shard.
        for shard in 0..5u64 {
            for round in 0..3u64 {
                let id = SessionId(shard + round * 5);
                assert_eq!(id.shard_of(5), shard as usize);
            }
        }
        // A single shard owns everything.
        assert_eq!(SessionId(u64::MAX).shard_of(1), 0);
    }
}
