//! Serving-side admission artifacts: offered-load storms and per-request
//! admission outcomes.
//!
//! The serving front-end (`alert-sched::serving`) drives the sharded
//! runtime from a *storm* — a frozen sequence of request arrivals
//! generated here from the same [`ArrivalProcess`] machinery the
//! scenario engine uses for per-input arrivals, one level up: requests
//! instead of inputs. Storm generation follows the workspace's frozen-
//! randomness discipline — exactly one uniform is consumed per request
//! regardless of the process in force, and each request carries a
//! label-derived seed for its own environment realization — so every
//! admission policy faces the bit-identical storm and the bit-identical
//! per-request inputs, and differences in goodput are attributable to
//! the admission decisions alone.
//!
//! The outcome side ([`RequestOutcome`], [`ServingReport`]) records what
//! the front-end decided per request (admit / degrade / shed), the
//! belief that justified it, and how the request actually fared, plus
//! the saturation-curve aggregates (goodput, miss-rate-among-admitted,
//! shed-rate) the serving bench plots per offered-load point.

use alert_stats::rng::{derive_seed, stream_rng};
use alert_stats::units::Seconds;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::script::{ArrivalProcess, ArrivalSampler};
use crate::trace::TraceSource;

/// A frozen offered-load storm specification.
///
/// `mean_gap` is the nominal request inter-arrival at unit load; the
/// arrival process shapes actual gaps around it exactly as per-input
/// arrivals are shaped around the deadline (Poisson stretches the mean
/// by `1/rate_scale`, bursts preserve it, periodic is the grid).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StormSpec {
    /// Shape of the request arrivals.
    pub arrival: ArrivalProcess,
    /// Number of requests in the storm.
    pub n_requests: usize,
    /// Nominal inter-arrival between requests at unit load.
    pub mean_gap: Seconds,
    /// Master seed; arrival uniforms and per-request seeds derive from
    /// it by label.
    pub seed: u64,
}

/// One request of a generated storm.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestArrival {
    /// Position in the storm (admission order).
    pub index: usize,
    /// Absolute virtual arrival time (bit-exact f64, policy-independent).
    pub at: Seconds,
    /// Seed for this request's stream/environment realization, derived
    /// as `derive_seed(storm_seed, "request-{index}")`.
    pub seed: u64,
}

impl StormSpec {
    /// Validates the spec: positive finite mean gap and a well-formed
    /// arrival process.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first malformed field.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.mean_gap.is_finite() && self.mean_gap.get() > 0.0) {
            return Err(format!(
                "storm mean_gap must be positive, got {}",
                self.mean_gap
            ));
        }
        self.arrival.validate()
    }
}

/// Generates the storm: `n_requests` arrivals with frozen randomness.
///
/// `trace` supplies recorded inter-arrivals for
/// [`ArrivalProcess::Trace`] storms (fitted onto the storm length by the
/// fit mode, exactly as per-input trace replay fits a horizon); without
/// an attached trace the trace variant degrades to the periodic grid,
/// mirroring [`ArrivalSampler::next_period`]. One uniform is drawn per
/// request in *every* mode, so switching the storm shape never re-aligns
/// the per-request seeds or any downstream frozen stream.
///
/// # Errors
///
/// Returns the spec or trace validation failure message.
pub fn generate_storm(
    spec: &StormSpec,
    trace: Option<&TraceSource>,
) -> Result<Vec<RequestArrival>, String> {
    spec.validate()?;
    if let Some(src) = trace {
        src.validate()?;
        if let ArrivalProcess::Trace { fit } = spec.arrival {
            src.check_horizon(spec.n_requests, fit)?;
        }
    }
    let mut rng = stream_rng(spec.seed, "serving-storm");
    let mut sampler = ArrivalSampler::new();
    let mut t = Seconds(0.0);
    let mut storm = Vec::with_capacity(spec.n_requests);
    for index in 0..spec.n_requests {
        // One uniform per request regardless of the process in force.
        let u: f64 = rng.gen();
        let gap = match (spec.arrival, trace) {
            (ArrivalProcess::Trace { fit }, Some(src)) => {
                src.step(index, spec.n_requests, fit).inter_arrival
            }
            (process, _) => sampler.next_period(&process, spec.mean_gap, u),
        };
        storm.push(RequestArrival {
            index,
            at: t,
            seed: derive_seed(spec.seed, &format!("request-{index}")),
        });
        t += gap;
    }
    Ok(storm)
}

/// What the admission layer decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AdmissionVerdict {
    /// Served under its original goal.
    Admitted,
    /// Served under a degraded goal (quality-floor/cap downgrade via a
    /// `GoalPatch`); the degraded goal is the *effective* goal its
    /// records carry and are judged against.
    Degraded,
    /// Rejected without service.
    Shed,
}

/// The per-request admission + service record emitted by the front-end.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestOutcome {
    /// Position in the storm.
    pub index: usize,
    /// Virtual arrival time.
    pub arrival: Seconds,
    /// Shard the request was routed to.
    pub shard: usize,
    /// The admission decision.
    pub verdict: AdmissionVerdict,
    /// The policy's predicted miss probability at decision time
    /// (belief-based policies only).
    pub predicted_miss: Option<f64>,
    /// Queue wait before service began (zero for shed requests).
    pub wait: Seconds,
    /// The effective quality floor the request was served (and judged)
    /// under — the degraded floor for [`AdmissionVerdict::Degraded`].
    pub effective_min_quality: Option<f64>,
    /// Inputs actually served (zero for shed requests).
    pub served_inputs: usize,
    /// Served inputs whose end-to-end completion (queue wait + compute
    /// latency) met the input deadline.
    pub timely_inputs: usize,
    /// `true` when the episode met its effective goal's quality/energy
    /// billing (degraded requests are billed against the degraded
    /// floor).
    pub quality_ok: bool,
}

/// The outcome log of one storm under one admission policy, with the
/// saturation-curve aggregates.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ServingReport {
    /// Admission policy name.
    pub policy: String,
    /// Inputs per request (uniform across the storm).
    pub inputs_per_request: usize,
    /// Per-request outcomes in admission order.
    pub outcomes: Vec<RequestOutcome>,
}

impl ServingReport {
    /// Requests offered.
    pub fn offered(&self) -> usize {
        self.outcomes.len()
    }

    /// Requests admitted (full-quality or degraded).
    pub fn admitted(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict != AdmissionVerdict::Shed)
            .count()
    }

    /// Requests admitted under a degraded goal.
    pub fn degraded(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.verdict == AdmissionVerdict::Degraded)
            .count()
    }

    /// Requests shed.
    pub fn shed(&self) -> usize {
        self.offered() - self.admitted()
    }

    /// Fraction of offered requests shed.
    pub fn shed_rate(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            return 0.0;
        }
        self.shed() as f64 / offered as f64
    }

    /// Goodput: timely inputs of quality-billable episodes, as a
    /// fraction of all *offered* inputs (shed requests count in the
    /// denominator with zero contribution — shedding is never free).
    pub fn goodput(&self) -> f64 {
        let offered_inputs = self.offered() * self.inputs_per_request;
        if offered_inputs == 0 {
            return 0.0;
        }
        let good: usize = self
            .outcomes
            .iter()
            .filter(|o| o.quality_ok)
            .map(|o| o.timely_inputs)
            .sum();
        good as f64 / offered_inputs as f64
    }

    /// Deadline miss rate among *served* inputs (admitted requests
    /// only): the SLO quality delivered to the requests the policy chose
    /// to accept.
    pub fn miss_rate_admitted(&self) -> f64 {
        let served: usize = self.outcomes.iter().map(|o| o.served_inputs).sum();
        if served == 0 {
            return 0.0;
        }
        let timely: usize = self.outcomes.iter().map(|o| o.timely_inputs).sum();
        (served - timely) as f64 / served as f64
    }

    /// Order-sensitive fingerprint of the full outcome log (FNV-1a over
    /// every decision-relevant field, f64s by bit pattern). Two runs of
    /// the same storm under the same policy must produce equal
    /// fingerprints — the serving bench asserts this per cell.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        eat(self.inputs_per_request as u64);
        for o in &self.outcomes {
            eat(o.index as u64);
            eat(o.arrival.get().to_bits());
            eat(o.shard as u64);
            eat(match o.verdict {
                AdmissionVerdict::Admitted => 1,
                AdmissionVerdict::Degraded => 2,
                AdmissionVerdict::Shed => 3,
            });
            eat(o.predicted_miss.map_or(u64::MAX, f64::to_bits));
            eat(o.wait.get().to_bits());
            eat(o.effective_min_quality.map_or(u64::MAX, f64::to_bits));
            eat(o.served_inputs as u64);
            eat(o.timely_inputs as u64);
            eat(u64::from(o.quality_ok));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{TraceFit, TraceStep};

    fn spec(arrival: ArrivalProcess) -> StormSpec {
        StormSpec {
            arrival,
            n_requests: 64,
            mean_gap: Seconds(0.5),
            seed: 2020,
        }
    }

    #[test]
    fn storm_is_bit_identical_across_generations() {
        for arrival in [
            ArrivalProcess::Periodic,
            ArrivalProcess::Poisson { rate_scale: 2.0 },
            ArrivalProcess::Bursty {
                burst: 4,
                spread: 0.2,
            },
        ] {
            let a = generate_storm(&spec(arrival), None).expect("storm");
            let b = generate_storm(&spec(arrival), None).expect("storm");
            assert_eq!(a, b);
            assert_eq!(a.len(), 64);
        }
    }

    #[test]
    fn storm_seeds_are_process_independent() {
        // Switching the arrival shape must not re-align per-request
        // seeds (one uniform per request in every mode).
        let a = generate_storm(&spec(ArrivalProcess::Periodic), None).expect("storm");
        let b = generate_storm(&spec(ArrivalProcess::Poisson { rate_scale: 4.0 }), None)
            .expect("storm");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.seed, y.seed);
        }
    }

    #[test]
    fn poisson_storm_compresses_gaps_with_load() {
        let slow = generate_storm(&spec(ArrivalProcess::Poisson { rate_scale: 1.0 }), None)
            .expect("storm");
        let fast = generate_storm(&spec(ArrivalProcess::Poisson { rate_scale: 4.0 }), None)
            .expect("storm");
        let span = |s: &[RequestArrival]| s.last().expect("nonempty").at.get();
        assert!(span(&fast) < span(&slow));
    }

    #[test]
    fn trace_storm_replays_recorded_gaps_verbatim() {
        let steps: Vec<TraceStep> = (0..8)
            .map(|i| TraceStep {
                inter_arrival: Seconds(0.1 + 0.05 * i as f64),
                scale: 1.0,
            })
            .collect();
        let src = TraceSource::new("storm", steps.clone());
        let mut s = spec(ArrivalProcess::Trace {
            fit: TraceFit::Loop,
        });
        s.n_requests = 8;
        let storm = generate_storm(&s, Some(&src)).expect("storm");
        let mut t: f64 = 0.0;
        for (i, r) in storm.iter().enumerate() {
            assert_eq!(r.at.get().to_bits(), t.to_bits(), "request {i}");
            t += steps[i].inter_arrival.get();
        }
    }

    #[test]
    fn trace_storm_without_source_degrades_to_grid() {
        let s = spec(ArrivalProcess::Trace {
            fit: TraceFit::Loop,
        });
        let storm = generate_storm(&s, None).expect("storm");
        let grid = generate_storm(&spec(ArrivalProcess::Periodic), None).expect("storm");
        assert_eq!(storm, grid);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        let mut s = spec(ArrivalProcess::Periodic);
        s.mean_gap = Seconds(0.0);
        assert!(generate_storm(&s, None).is_err());
        let s = spec(ArrivalProcess::Poisson { rate_scale: -1.0 });
        assert!(generate_storm(&s, None).is_err());
    }

    #[test]
    fn report_aggregates_and_fingerprint() {
        let outcome = |index: usize, verdict, timely: usize| RequestOutcome {
            index,
            arrival: Seconds(index as f64),
            shard: index % 2,
            verdict,
            predicted_miss: None,
            wait: Seconds(0.0),
            effective_min_quality: None,
            served_inputs: if verdict == AdmissionVerdict::Shed {
                0
            } else {
                4
            },
            timely_inputs: timely,
            quality_ok: verdict != AdmissionVerdict::Shed,
        };
        let report = ServingReport {
            policy: "test".into(),
            inputs_per_request: 4,
            outcomes: vec![
                outcome(0, AdmissionVerdict::Admitted, 4),
                outcome(1, AdmissionVerdict::Degraded, 3),
                outcome(2, AdmissionVerdict::Shed, 0),
                outcome(3, AdmissionVerdict::Admitted, 2),
            ],
        };
        assert_eq!(report.offered(), 4);
        assert_eq!(report.admitted(), 3);
        assert_eq!(report.degraded(), 1);
        assert_eq!(report.shed(), 1);
        assert!((report.shed_rate() - 0.25).abs() < 1e-12);
        assert!((report.goodput() - 9.0 / 16.0).abs() < 1e-12);
        assert!((report.miss_rate_admitted() - 3.0 / 12.0).abs() < 1e-12);
        let same = report.clone();
        assert_eq!(report.fingerprint(), same.fingerprint());
        let mut other = report.clone();
        other.outcomes[3].timely_inputs = 3;
        assert_ne!(report.fingerprint(), other.fingerprint());
    }
}
