//! The self-test that locks the workspace lint-clean: any reintroduced
//! violation in library code fails `cargo test`, not just CI's
//! dedicated lint job.

use alert_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_workspace(root).expect("workspace scan succeeds");

    // A real corpus was scanned, not an empty directory.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );

    // Zero unsuppressed violations anywhere.
    let listing: String = report
        .violations
        .iter()
        .map(|v| format!("  {}:{} [{}] {}\n", v.file, v.line, v.rule, v.snippet))
        .collect();
    assert!(
        report.is_clean(),
        "workspace is not lint-clean; run `cargo run -p alert-lint` for the report:\n{listing}"
    );

    // Every suppression carries a non-empty reason and suppressed at
    // least one real finding (the engine flags unused allows, but the
    // ledger must stay honest too).
    for a in &report.allowed {
        assert!(
            !a.reason.trim().is_empty(),
            "{}:{} allow has an empty reason",
            a.file,
            a.line
        );
        assert!(
            a.suppressed > 0,
            "{}:{} allow suppressed nothing",
            a.file,
            a.line
        );
    }

    // The full 12-rule catalog is in force: 8 lexical rules, the 4
    // semantic (graph-powered) rules, and nothing unexpected.
    let mut rules: Vec<&str> = report.rules.iter().map(|r| r.id).collect();
    rules.sort_unstable();
    assert_eq!(
        rules,
        vec![
            "allow-needs-reason",
            "crate-layer-dag",
            "lock-order",
            "metric-name-discipline",
            "nan-unsafe-compare",
            "no-hash-iteration",
            "no-panic",
            "no-unseeded-rng",
            "no-wall-clock",
            "panic-reachability",
            "rng-provenance",
            "unused-allow",
        ]
    );

    // The semantic pass actually ran over the real corpus: the call
    // graph is populated and its structural invariants hold raw
    // (pre-suppression) — no upward layer references, no lock-order
    // cycles, every RNG construction traced to a named seed source,
    // every panic source accounted for.
    let g = &report.graph;
    assert!(g.files_parsed > 50, "item parser skipped the corpus");
    assert!(g.fns > 500, "only {} fns in the call graph", g.fns);
    assert!(g.pub_fns > 0 && g.pub_fns < g.fns);
    assert!(g.edges_high > 0, "no path-resolved edges at all");
    assert_eq!(g.edges, g.edges_high + g.edges_low);
    assert!(!g.layers.is_empty(), "layer table missing from the report");
    assert_eq!(g.layer_violations, 0, "upward layer reference crept in");
    assert_eq!(g.lock_cycles, 0, "lock-order cycle crept in");
    assert_eq!(
        g.rng_traced, g.rng_constructions,
        "an RNG construction lost its seed provenance"
    );
    assert_eq!(
        g.panic_accounted, g.panic_sources,
        "an assert! site is reachable from the pub API undocumented"
    );
}
