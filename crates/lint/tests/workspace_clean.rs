//! The self-test that locks the workspace lint-clean: any reintroduced
//! violation in library code fails `cargo test`, not just CI's
//! dedicated lint job.

use alert_lint::lint_workspace;
use std::path::Path;

#[test]
fn workspace_has_no_unsuppressed_violations() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root");
    assert!(
        root.join("Cargo.toml").exists(),
        "workspace root not found at {}",
        root.display()
    );
    let report = lint_workspace(root).expect("workspace scan succeeds");

    // A real corpus was scanned, not an empty directory.
    assert!(
        report.files_scanned > 50,
        "only {} files scanned — wrong root?",
        report.files_scanned
    );

    // Zero unsuppressed violations anywhere.
    let listing: String = report
        .violations
        .iter()
        .map(|v| format!("  {}:{} [{}] {}\n", v.file, v.line, v.rule, v.snippet))
        .collect();
    assert!(
        report.is_clean(),
        "workspace is not lint-clean; run `cargo run -p alert-lint` for the report:\n{listing}"
    );

    // Every suppression carries a non-empty reason and suppressed at
    // least one real finding (the engine flags unused allows, but the
    // ledger must stay honest too).
    for a in &report.allowed {
        assert!(
            !a.reason.trim().is_empty(),
            "{}:{} allow has an empty reason",
            a.file,
            a.line
        );
        assert!(
            a.suppressed > 0,
            "{}:{} allow suppressed nothing",
            a.file,
            a.line
        );
    }
}
