//! Fixture-driven semantic-rule tests: each fixture is planted in a
//! synthetic on-disk workspace and run through the full public
//! pipeline (`lint_workspace`), pinning the exact (rule, file, line)
//! triples that fire. These are the acceptance self-tests: each one
//! reintroduces a class of violation this PR fixed (or guards against)
//! and asserts the report flips to non-clean — i.e. the binary would
//! exit 1.

use alert_lint::lint_workspace;
use alert_lint::report::Report;
use std::fs;
use std::path::{Path, PathBuf};

/// Writes `files` (workspace-relative path → contents) under a private
/// subdirectory of the test-scoped target tmpdir and returns the root.
fn synth(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join("synth_ws")
        .join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("reset synth workspace");
    }
    for (rel, src) in files {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("fixture path has a parent"))
            .expect("mkdir fixture dir");
        fs::write(&path, src).expect("write fixture file");
    }
    fs::write(root.join("Cargo.toml"), "[workspace]\n").expect("write manifest");
    root
}

fn scan(name: &str, files: &[(&str, &str)]) -> Report {
    lint_workspace(&synth(name, files)).expect("synthetic workspace scans")
}

/// Unsuppressed (rule, file, line) triples, sorted.
fn hits(report: &Report) -> Vec<(String, String, usize)> {
    let mut v: Vec<(String, String, usize)> = report
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.file.clone(), v.line))
        .collect();
    v.sort();
    v
}

/// A no-violation companion file so every synthetic workspace has more
/// than one file and a populated call graph.
const CLEAN_LIB: &str = "pub fn add(a: u64, b: u64) -> u64 {\n    a.wrapping_add(b)\n}\n";

#[test]
fn clean_synthetic_workspace_is_clean() {
    let report = scan("clean", &[("crates/stats/src/util.rs", CLEAN_LIB)]);
    assert!(report.is_clean(), "{:?}", hits(&report));
    assert_eq!(report.graph.fns, 1);
    assert_eq!(report.graph.files_parsed, 1);
}

#[test]
fn reintroduced_sched_to_bench_import_flips_red() {
    let report = scan(
        "layer_leak",
        &[
            (
                "crates/sched/src/leak.rs",
                include_str!("fixtures/layer_leak.rs"),
            ),
            ("crates/stats/src/util.rs", CLEAN_LIB),
        ],
    );
    assert_eq!(
        hits(&report),
        vec![(
            "crate-layer-dag".to_string(),
            "crates/sched/src/leak.rs".to_string(),
            4,
        )]
    );
    assert_eq!(report.graph.layer_violations, 1);
    assert!(!report.is_clean(), "upward import must exit 1");
}

#[test]
fn reintroduced_inverted_lock_pair_flips_red() {
    let report = scan(
        "lock_inversion",
        &[(
            "crates/sched/src/executor.rs",
            include_str!("fixtures/lock_inversion.rs"),
        )],
    );
    let got = hits(&report);
    assert!(
        got.iter()
            .all(|(r, f, _)| r == "lock-order" && f == "crates/sched/src/executor.rs"),
        "{got:?}"
    );
    // Both directions of the inversion close a cycle: queue→done is
    // recorded at the `done` acquisition on line 13, done→queue at the
    // `queue` acquisition on line 19.
    let lines: Vec<usize> = got.iter().map(|(_, _, l)| *l).collect();
    assert_eq!(lines, vec![13, 19]);
    assert!(report.graph.lock_cycles > 0);
    assert_eq!(report.graph.lock_edges.len(), 2);
    assert!(!report.is_clean(), "lock inversion must exit 1");
}

#[test]
fn reintroduced_entropy_seeded_rng_flips_red() {
    let report = scan(
        "rng_untraced",
        &[(
            "crates/workload/src/noise.rs",
            include_str!("fixtures/rng_untraced.rs"),
        )],
    );
    let got = hits(&report);
    assert!(
        !got.is_empty() && got.iter().all(|(r, _, l)| r == "rng-provenance" && *l == 6),
        "{got:?}"
    );
    assert!(report.graph.rng_constructions > report.graph.rng_traced);
    assert!(!report.is_clean(), "entropy-seeded RNG must exit 1");
}

#[test]
fn reintroduced_undocumented_reachable_assert_flips_red() {
    let report = scan(
        "panic_reach",
        &[(
            "crates/core/src/depths.rs",
            include_str!("fixtures/panic_reach.rs"),
        )],
    );
    assert_eq!(
        hits(&report),
        vec![(
            "panic-reachability".to_string(),
            "crates/core/src/depths.rs".to_string(),
            10,
        )]
    );
    // The violation names the pub entry point the assert is reachable
    // from, so the fix target is unambiguous.
    let msg = &report.violations[0].message;
    assert!(msg.contains("alert_core::depths::api"), "{msg}");
    assert!(!report.is_clean(), "reachable assert must exit 1");
}

#[test]
fn semantic_violations_obey_the_allow_grammar() {
    // The same layer leak, but carrying a reasoned allow: the workspace
    // is clean, the ledger records the suppression, and the raw graph
    // count still reports the violation for CI's structural gate.
    let src = "use alert_bench::harness::Run; // lint:allow(crate-layer-dag): fixture — proves semantic rules run through the ledger\n";
    let report = scan("layer_leak_allowed", &[("crates/sched/src/leak.rs", src)]);
    assert!(report.is_clean(), "{:?}", hits(&report));
    assert_eq!(report.counts.suppressed_sites, 1);
    assert_eq!(
        report.graph.layer_violations, 1,
        "graph counts are pre-suppression"
    );
}

#[test]
fn allow_naming_a_semantically_dead_rule_is_flagged() {
    // The allow suppresses the layer leak, but also names lock-order —
    // which never fires on that line. The per-rule ledger flags the
    // stale member even though the annotation as a whole was used.
    let src = "use alert_bench::harness::Run; // lint:allow(crate-layer-dag, lock-order): fixture — stale member must be flagged\n";
    let report = scan("stale_allow_member", &[("crates/sched/src/leak.rs", src)]);
    assert_eq!(
        hits(&report),
        vec![(
            "unused-allow".to_string(),
            "crates/sched/src/leak.rs".to_string(),
            1,
        )]
    );
    let msg = &report.violations[0].message;
    assert!(msg.contains("lock-order"), "{msg}");
}
