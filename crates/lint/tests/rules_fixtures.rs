//! Fixture-driven rule tests: each file under `tests/fixtures/` is a
//! deliberately-violating source; the tests pin exactly which (rule,
//! line) pairs fire when that source is placed at a given workspace
//! path. This is the regression net for the acceptance criterion that
//! reintroducing a fixed violation (say, an `unwrap()` in
//! `crates/core/src`) turns the lint red.

use alert_lint::context::FileContext;
use alert_lint::lexer::lex;
use alert_lint::rules::{self, check_file, FileFindings};

/// Runs the rule engine on `src` as if it lived at `path`.
fn check(path: &str, src: &str) -> FileFindings {
    let tokens = lex(src);
    let ctx = FileContext::build(path, src, &tokens);
    check_file(&ctx, src, &tokens)
}

/// The (rule, line) pairs of all unsuppressed violations, sorted.
fn hits(f: &FileFindings) -> Vec<(String, usize)> {
    let mut v: Vec<(String, usize)> = f
        .violations
        .iter()
        .map(|v| (v.rule.clone(), v.line))
        .collect();
    v.sort();
    v
}

#[test]
fn panic_family_fires_in_library_code_only_outside_tests() {
    let f = check(
        "crates/core/src/panics.rs",
        include_str!("fixtures/panics.rs"),
    );
    // Six real sites: unwrap, expect, panic!, todo!, unreachable!, and
    // the slice literal-index. Nothing from comments (nested block
    // comments included), string/raw-string/char literals, the
    // SCREAMING_CASE const table, or the #[cfg(test)] module.
    assert_eq!(
        hits(&f),
        vec![
            (rules::NO_PANIC.to_string(), 10),
            (rules::NO_PANIC.to_string(), 11),
            (rules::NO_PANIC.to_string(), 13),
            (rules::NO_PANIC.to_string(), 16),
            (rules::NO_PANIC.to_string(), 17),
            (rules::NO_PANIC.to_string(), 20),
        ]
    );
}

#[test]
fn panic_family_is_silent_in_bench_and_test_targets() {
    let src = include_str!("fixtures/panics.rs");
    for path in [
        "crates/bench/src/bin/fig9.rs",
        "crates/core/tests/integration.rs",
    ] {
        let f = check(path, src);
        assert!(
            !hits(&f).iter().any(|(r, _)| r == rules::NO_PANIC),
            "{path}: no-panic must not apply outside library code"
        );
    }
}

#[test]
fn wall_clock_and_rng_fire_outside_tests() {
    let f = check(
        "crates/models/src/clocks.rs",
        include_str!("fixtures/clocks_rng.rs"),
    );
    // The import line carries both clock types; the two call sites add
    // one each. The #[cfg(test)] Instant::now() is exempt; the rng
    // sites fire everywhere.
    assert_eq!(
        hits(&f),
        vec![
            (rules::NO_UNSEEDED_RNG.to_string(), 13),
            (rules::NO_UNSEEDED_RNG.to_string(), 14),
            (rules::NO_WALL_CLOCK.to_string(), 4),
            (rules::NO_WALL_CLOCK.to_string(), 4),
            (rules::NO_WALL_CLOCK.to_string(), 7),
            (rules::NO_WALL_CLOCK.to_string(), 8),
        ]
    );
}

#[test]
fn wall_clock_is_sanctioned_in_bench_and_the_metering_module() {
    let src = include_str!("fixtures/clocks_rng.rs");
    for path in [
        "crates/bench/src/bin/fig9.rs",
        "crates/stats/src/cputime.rs",
    ] {
        let f = check(path, src);
        assert!(
            !hits(&f).iter().any(|(r, _)| r == rules::NO_WALL_CLOCK),
            "{path}: wall clock is sanctioned here"
        );
    }
}

#[test]
fn hash_iteration_fires_only_on_decision_paths() {
    let src = include_str!("fixtures/hashes.rs");
    let on_path = check("crates/core/src/hashes.rs", src);
    // Import line (HashMap + HashSet), then two mentions per binding
    // line (type annotation and constructor). BTreeMap never fires.
    assert_eq!(
        hits(&on_path),
        vec![
            (rules::NO_HASH_ITERATION.to_string(), 4),
            (rules::NO_HASH_ITERATION.to_string(), 4),
            (rules::NO_HASH_ITERATION.to_string(), 7),
            (rules::NO_HASH_ITERATION.to_string(), 7),
            (rules::NO_HASH_ITERATION.to_string(), 8),
            (rules::NO_HASH_ITERATION.to_string(), 8),
        ]
    );
    let off_path = check("crates/stats/src/hashes.rs", src);
    assert_eq!(
        hits(&off_path),
        vec![],
        "hash containers are fine off the decision paths"
    );
}

#[test]
fn nan_unsafe_compares_fire_and_safe_forms_do_not() {
    let f = check(
        "crates/stats/src/nan.rs",
        include_str!("fixtures/nan_compare.rs"),
    );
    // partial_cmp().unwrap() is both NaN-unsafe and a panic site; the
    // two bare float==literal comparisons fire once each. total_cmp,
    // orderings, is_some_and, and tuple-field `.0 == .1` stay silent.
    assert_eq!(
        hits(&f),
        vec![
            (rules::NAN_UNSAFE_COMPARE.to_string(), 5),
            (rules::NAN_UNSAFE_COMPARE.to_string(), 6),
            (rules::NAN_UNSAFE_COMPARE.to_string(), 7),
            (rules::NO_PANIC.to_string(), 5),
        ]
    );
}

#[test]
fn metric_name_discipline_fires_in_library_code_only() {
    let src = include_str!("fixtures/metric_names.rs");
    let f = check("crates/sched/src/metric_names.rs", src);
    // Four computed-name call sites plus the forwarded-name helper; the
    // literal and raw-literal names stay silent, the reasoned allow
    // suppresses the migration shim, the definition-style `fn
    // counter_add` header is not a recording site, and the test module
    // is exempt.
    assert_eq!(
        hits(&f),
        vec![
            (rules::METRIC_NAME_DISCIPLINE.to_string(), 6),
            (rules::METRIC_NAME_DISCIPLINE.to_string(), 7),
            (rules::METRIC_NAME_DISCIPLINE.to_string(), 8),
            (rules::METRIC_NAME_DISCIPLINE.to_string(), 9),
            (rules::METRIC_NAME_DISCIPLINE.to_string(), 16),
        ]
    );
    assert_eq!(f.allowed.len(), 1);
    assert_eq!(f.allowed[0].suppressed, 1);

    // Bench bins and integration tests may label ad-hoc series however
    // they like; the discipline binds library recording paths only.
    for path in ["crates/bench/src/bin/runtime.rs", "tests/telemetry.rs"] {
        let f = check(path, src);
        assert!(
            !hits(&f)
                .iter()
                .any(|(r, _)| r == rules::METRIC_NAME_DISCIPLINE),
            "{path}: metric-name-discipline must not apply outside library code"
        );
    }
}

#[test]
fn allow_grammar_suppresses_ledgers_and_polices_itself() {
    let f = check(
        "crates/core/src/allows.rs",
        include_str!("fixtures/allows.rs"),
    );
    // Reason-less and unknown-rule annotations are themselves findings
    // AND fail to suppress; an annotation covering nothing is flagged
    // as unused.
    assert_eq!(
        hits(&f),
        vec![
            (rules::ALLOW_NEEDS_REASON.to_string(), 15),
            (rules::ALLOW_NEEDS_REASON.to_string(), 20),
            (rules::NO_PANIC.to_string(), 16),
            (rules::NO_PANIC.to_string(), 21),
            (rules::UNUSED_ALLOW.to_string(), 25),
        ]
    );
    // Both the standalone and the trailing reasoned allows suppressed
    // exactly one site each and entered the ledger with their reasons.
    let mut ledger: Vec<(usize, usize, &str)> = f
        .allowed
        .iter()
        .map(|a| (a.line, a.suppressed, a.reason.as_str()))
        .collect();
    ledger.sort();
    assert_eq!(
        ledger,
        vec![
            (6, 1, "fixture invariant — the caller always passes Some"),
            (11, 1, "fixture invariant — the caller always passes Some"),
        ]
    );
}
