//! Property tests for the lexer's tiling invariants: on *any* input —
//! including unterminated literals and comment soup — the token stream
//! must tile the source exactly, land only on UTF-8 boundaries, and
//! mask to a same-length byte string that preserves newlines.
//!
//! The vendored proptest shim has no string strategies, so sources are
//! composed by index-picking from a fragment table that covers every
//! token kind, nesting, escapes, raw-string guards, lifetimes, and
//! deliberately broken (unterminated) pieces.

use alert_lint::lexer::{lex, mask, TokKind};
use proptest::collection::vec;
use proptest::prelude::*;

/// Tricky source fragments. Unterminated pieces are deliberately
/// included: the lexer must extend them to end-of-input, never fail.
const FRAGMENTS: &[&str] = &[
    "fn f() { x.unwrap(); }",
    "// line comment with \"quotes\" and unwrap()",
    "/* block /* nested */ still open? no: */",
    "\"plain string with \\\" escape\"",
    "r\"raw, no guard\"",
    "r#\"guard one: \" inside\"#",
    "br##\"guard two: \"# inside\"##",
    "c\"c string\"",
    "b\"byte string with \\\\ backslash\"",
    "'a'",
    "'\\''",
    "'\\u{1F600}'",
    "b'x'",
    "&'static str",
    "<'a, 'b>",
    "let bridge = 1;",
    "let r = 2; let b = 3; let c = 4;",
    "π_unicode_ident",
    "\"π in a string\"",
    "/* unterminated",
    "\"unterminated",
    "r#\"unterminated raw",
    "'",
    "#[cfg(test)] mod tests { fn t() {} }",
    "\n",
    " ",
    "==",
    "1.5e-3",
];

/// Separators spliced between fragments.
const SEPS: &[&str] = &["", " ", "\n", ";\n"];

/// Builds one source string from fragment/separator index picks.
fn compose(picks: &[(usize, usize)]) -> String {
    let mut s = String::new();
    for &(f, sep) in picks {
        s.push_str(FRAGMENTS[f % FRAGMENTS.len()]);
        s.push_str(SEPS[sep % SEPS.len()]);
    }
    s
}

proptest! {
    #[test]
    fn tiling_round_trips_byte_offsets(
        picks in vec((0usize..FRAGMENTS.len(), 0usize..SEPS.len()), 0..12),
    ) {
        let src = compose(&picks);
        let tokens = lex(&src);

        // Empty input is the only input with no tokens.
        prop_assert_eq!(tokens.is_empty(), src.is_empty());

        // Contiguous tiling: starts at 0, ends at len, no gaps or
        // overlaps, every boundary a char boundary, no empty tokens.
        let mut cursor = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap or overlap in {:?}", src);
            prop_assert!(t.start < t.end, "empty token in {:?}", src);
            prop_assert!(src.is_char_boundary(t.start));
            prop_assert!(src.is_char_boundary(t.end));
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "tiling must end at EOF of {:?}", src);

        // Concatenating the spans reproduces the input byte-for-byte.
        let rebuilt: String = tokens.iter().map(|t| &src[t.start..t.end]).collect();
        prop_assert_eq!(&rebuilt, &src);

        // Lexing is deterministic.
        prop_assert_eq!(&lex(&src), &tokens);

        // The mask is same-length, keeps Code bytes verbatim, keeps
        // newlines everywhere (line numbers survive), and blanks
        // non-code so rules cannot fire on prose.
        let masked = mask(&src, &tokens);
        prop_assert_eq!(masked.len(), src.len());
        for t in &tokens {
            for (off, &b) in src.as_bytes()[t.start..t.end].iter().enumerate() {
                let m = masked[t.start + off];
                if t.kind == TokKind::Code {
                    prop_assert_eq!(m, b);
                } else if b == b'\n' {
                    prop_assert_eq!(m, b'\n');
                } else {
                    prop_assert_eq!(m, b' ', "non-code byte leaked in {:?}", src);
                }
            }
        }
    }
}
