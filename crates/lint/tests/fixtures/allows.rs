//! Fixture: the `lint:allow` grammar — reasoned, reason-less, unknown
//! rule, and unused annotations. Deliberately violating — excluded from
//! the workspace scan.

pub fn suppressed(opt: Option<i32>) -> i32 {
    // lint:allow(no-panic): fixture invariant — the caller always passes Some
    opt.unwrap()
}

pub fn suppressed_trailing(opt: Option<i32>) -> i32 {
    opt.unwrap() // lint:allow(no-panic): fixture invariant — the caller always passes Some
}

pub fn reasonless(opt: Option<i32>) -> i32 {
    // lint:allow(no-panic)
    opt.unwrap()
}

pub fn unknown_rule(opt: Option<i32>) -> i32 {
    // lint:allow(no-such-rule): this rule does not exist
    opt.unwrap()
}

pub fn unused(x: i32) -> i32 {
    // lint:allow(no-panic): nothing on the next line can panic
    x + 1
}
