//! Fixture: metric-name discipline sites. Deliberately violating —
//! excluded from the workspace scan.

pub fn record(reg: &mut Registry, id: u64, dynamic: &'static str) {
    reg.counter_add("decisions", Scope::Global, 1); // fine: literal
    reg.counter_add(&format!("decisions_{id}"), Scope::Global, 1); // finding
    reg.gauge_set(dynamic, Scope::Global, 1.0); // finding
    reg.histogram_observe(name_for(id), Scope::Global, 0.5); // finding
    reg.declare_counter(concat!("a", "b"), Scope::Global); // finding
    reg.declare_gauge(r#"idle_ratio"#, Scope::Global); // fine: raw literal
    // lint:allow(metric-name-discipline): migration shim keeps a legacy dynamic name
    reg.declare_histogram(dynamic, Scope::Global, 1e-9, 1.0, 30);
}

pub fn counter_add(reg: &mut Registry, name: &'static str) {
    reg.counter_add(name, Scope::Global, 1); // finding: forwarded name
}

#[cfg(test)]
mod tests {
    #[test]
    fn dynamic_names_are_fine_in_test_code() {
        let mut reg = Registry::default();
        let n = String::from("m1");
        reg.gauge_set(&n, Scope::Global, 0.0);
    }
}
