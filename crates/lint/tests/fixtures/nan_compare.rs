//! Fixture: NaN-unsafe float comparisons. Deliberately violating —
//! excluded from the workspace scan.

pub fn unsafe_compares(xs: &mut [f64], x: f64) -> bool {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); // finding: partial_cmp().unwrap()
    let eq = x == 0.5; // finding: bare float == literal
    let ne = 1.0 != x; // finding: bare float != literal
    eq || ne
}

pub fn safe_compares(xs: &mut [f64], x: f64) -> bool {
    xs.sort_by(f64::total_cmp); // fine
    let lt = x < 0.5; // ordering comparisons are fine
    let opt = x.partial_cmp(&0.5).is_some_and(|o| o.is_lt()); // fine
    let tup = (1, 2);
    let fields = tup.0 == tup.1; // tuple fields are not float literals
    lt || opt || fields
}
