//! Fixture: inverted lock acquisition order (queue→done in one fn,
//! done→queue in another). Deliberately violating — excluded from the
//! workspace scan.

pub struct Executor {
    queue: Mutex<u32>,
    done: Mutex<u32>,
}

impl Executor {
    pub fn push(&self) {
        let q = self.queue.lock();
        let d = self.done.lock();
        let _ = (q, d);
    }

    pub fn drain(&self) {
        let d = self.done.lock();
        let q = self.queue.lock();
        let _ = (q, d);
    }
}
