//! Fixture: item-parser shapes — nested modules, impls, traits, and
//! generic fns whose where-clauses contain `->` arrows (the classic
//! return-type/where ambiguity). Excluded from the workspace scan.

pub mod outer {
    pub mod inner {
        pub fn leaf(n: u32) -> u32 {
            n + 1
        }
    }

    pub struct Gadget {
        pub state: u32,
    }

    impl Gadget {
        pub fn apply<F>(&self, f: F) -> u32
        where
            F: Fn(u32) -> u32,
        {
            f(self.state)
        }

        fn private_helper(&self) -> u32 {
            self.state
        }
    }
}

pub use outer::inner::leaf;

pub trait Step {
    fn step(&mut self) -> bool;
}

const LIMIT: usize = 8;

fn root_fn<T>(xs: Vec<T>) -> usize
where
    T: Into<u64>,
{
    xs.len().min(LIMIT)
}
