//! Fixture: RNG constructed from ambient entropy via `rand::random`
//! instead of a named seed/stream source. Deliberately violating —
//! excluded from the workspace scan.

pub fn fresh() -> StdRng {
    StdRng::seed_from_u64(rand::random())
}
