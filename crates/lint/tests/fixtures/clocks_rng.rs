//! Fixture: wall-clock and unseeded-randomness sites. Deliberately
//! violating — excluded from the workspace scan.

use std::time::{Instant, SystemTime};

pub fn clocked() -> f64 {
    let t0 = Instant::now(); // finding: wall clock
    let _wall = SystemTime::now(); // finding: wall clock
    t0.elapsed().as_secs_f64()
}

pub fn entropy() -> u64 {
    let mut rng = rand::thread_rng(); // finding: unseeded rng
    let other = rand::rngs::StdRng::from_entropy(); // finding: unseeded rng
    let _ = other;
    rng.gen()
}

pub fn prose_is_fine() -> &'static str {
    // Instant::now() in a comment is prose.
    "the string Instant::now() is also prose"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
