//! Fixture: upward layer reference (sched → bench). Deliberately
//! violating — excluded from the workspace scan.

use alert_bench::harness::Run;

pub fn schedule(r: Run) -> Run {
    r
}
