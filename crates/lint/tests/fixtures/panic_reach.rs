//! Fixture: an `assert!` in a private fn reachable from the pub API,
//! with no `# Panics` contract on the way in. Deliberately violating —
//! excluded from the workspace scan.

pub fn api(n: usize) -> usize {
    internal(n)
}

fn internal(n: usize) -> usize {
    assert!(n > 0, "n must be positive");
    n - 1
}
