//! Fixture: hash-iteration sites for decision-path files. Deliberately
//! violating — excluded from the workspace scan.

use std::collections::{BTreeMap, HashMap, HashSet};

pub fn decide(keys: &[u32]) -> usize {
    let mut m: HashMap<u32, u32> = HashMap::new(); // finding x2 on decision paths
    let mut s: HashSet<u32> = HashSet::new(); // finding x2 on decision paths
    let ordered: BTreeMap<u32, u32> = BTreeMap::new(); // fine: ordered
    for &k in keys {
        m.insert(k, k);
        s.insert(k);
    }
    m.len() + s.len() + ordered.len()
}
