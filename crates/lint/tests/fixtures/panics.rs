//! Fixture: panic-family sites a library file must not contain, mixed
//! with look-alikes inside comments, strings, and test code that must
//! NOT fire. Deliberately violating — excluded from the workspace scan.

/* A block comment mentioning unwrap() and panic!("no") does not count.
   /* Nested block comments nest, and unwrap() in here is still prose. */
   Still inside the outer comment: expect("nope"). */

pub fn real_violations(xs: &[i32], opt: Option<i32>) -> i32 {
    let a = opt.unwrap(); // finding 1: unwrap
    let b = opt.expect("present"); // finding 2: expect
    if xs.is_empty() {
        panic!("empty"); // finding 3: panic!
    }
    match a {
        0 => todo!(), // finding 4: todo!
        1 => unreachable!(), // finding 5: unreachable!
        _ => {}
    }
    a + b + xs[0] // finding 6: literal index
}

pub fn look_alikes() -> &'static str {
    // unwrap() in a line comment is prose, not code.
    let s = "calling unwrap() inside a string literal";
    let r = r#"raw string with panic!("boom") and "quotes" inside"#;
    let deep = r##"guard-depth two: "# does not close "##;
    let ch = '"'; // char literal holding a quote
    let esc = '\''; // escaped quote char
    let _lifetime: &'static str = "lifetimes are not char literals";
    let _ = (s, r, deep, ch, esc);
    "ok"
}

/// SCREAMING_CASE receivers are const tables; rustc already rejects
/// out-of-bounds literal indexing into them at compile time.
const COEFFS: [f64; 3] = [1.0, 2.0, 3.0];

pub fn const_index() -> f64 {
    COEFFS[0] + COEFFS[2]
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<i32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let w: [i32; 1] = [7];
        assert_eq!(w[0], 7);
    }
}
