//! Property tests for the call-graph pipeline: on *any* composition of
//! adversarial item fragments — unbalanced braces, generics with `->`
//! arrows in where-clauses, macro soup, unterminated literals — item
//! parsing and graph construction must be total (never panic) and
//! deterministic (same input, bit-identical graph), and every produced
//! index/span must stay in bounds.
//!
//! Mirrors `lexer_props.rs`: the vendored proptest shim has no string
//! strategies, so sources are composed by index-picking from a fragment
//! table.

use alert_lint::context::context_for;
use alert_lint::graph::{CallGraph, GraphInput};
use alert_lint::items::parse;
use alert_lint::lexer::{lex, mask};
use proptest::collection::vec;
use proptest::prelude::*;

/// Item-level fragments, including deliberately broken shapes the
/// parser must recover from.
const FRAGMENTS: &[&str] = &[
    "pub fn api(n: u32) -> u32 { helper(n) }",
    "fn helper(n: u32) -> u32 { n + 1 }",
    "pub mod m { pub fn inner() { super_call(); } }",
    "impl Widget { pub fn spin(&self) -> u32 { self.helper() } fn helper(&self) -> u32 { 0 } }",
    "pub struct Widget { state: u32 }",
    "use alert_stats::rng::stream_rng;",
    "pub fn calls_import(seed: u64) { stream_rng(seed, \"x\"); }",
    "fn generic<F>(f: F) -> u32 where F: Fn(u32) -> u32 { f(1) }",
    "trait Step { fn step(&mut self) -> bool; }",
    "macro_rules! mk { () => { fn made() {} }; }",
    "pub fn shadowed() { shadowed(); }",
    "const LIMIT: usize = 8;",
    "fn unclosed() { if x {",
    "}",
    "}}",
    "pub fn",
    "impl {",
    "fn stray_arrow() -> ",
    "#[cfg(test)] mod tests { fn t() { api(0); } }",
    "// fn commented_out() { api(1); }",
    "\"fn in_a_string() { api(2); }\"",
    "let not_an_item = 3;",
    "pub fn deep(a: u32) { helper(helper(helper(a))); }",
];

/// Separators spliced between fragments.
const SEPS: &[&str] = &["", " ", "\n", "\n\n"];

/// Builds one source string from fragment/separator index picks.
fn compose(picks: &[(usize, usize)]) -> String {
    let mut s = String::new();
    for &(f, sep) in picks {
        s.push_str(FRAGMENTS[f % FRAGMENTS.len()]);
        s.push_str(SEPS[sep % SEPS.len()]);
    }
    s
}

/// A fixed second file so cross-file resolution paths always run.
const PEER: &str =
    "pub fn stream_rng(seed: u64, label: &str) -> u64 { seed }\npub fn api(n: u32) -> u32 { n }\n";

struct Prepared {
    ctx: alert_lint::context::FileContext,
    masked: Vec<u8>,
    items: Vec<alert_lint::items::Item>,
}

fn prepare(path: &str, src: &str) -> Prepared {
    let tokens = lex(src);
    let ctx = context_for(path, src);
    let masked = mask(src, &tokens);
    let items = parse(&masked);
    Prepared { ctx, masked, items }
}

fn build(files: &[Prepared]) -> CallGraph {
    let inputs: Vec<GraphInput<'_>> = files
        .iter()
        .map(|p| GraphInput {
            ctx: &p.ctx,
            masked: &p.masked,
            items: &p.items,
        })
        .collect();
    CallGraph::build(&inputs)
}

/// A comparable fingerprint of everything the semantic rules consume.
fn fingerprint(g: &CallGraph) -> String {
    let mut out = String::new();
    for n in &g.nodes {
        out.push_str(&format!(
            "{} {:?} {:?} {}\n",
            n.display_path(),
            n.span,
            n.body,
            n.pub_api
        ));
    }
    for e in &g.edges {
        out.push_str(&format!(
            "{}->{} {:?} c{} @{}\n",
            e.from, e.to, e.confidence, e.candidates, e.offset
        ));
    }
    out.push_str(&format!("unresolved {}\n", g.unresolved_calls));
    out
}

proptest! {
    #[test]
    fn graph_construction_is_total_and_deterministic(
        picks in vec((0usize..FRAGMENTS.len(), 0usize..SEPS.len()), 0..12),
    ) {
        let src = compose(&picks);
        let files = [
            prepare("crates/core/src/fuzzed.rs", &src),
            prepare("crates/stats/src/rng.rs", PEER),
        ];

        // Totality: building never panics (reaching here proves it) and
        // the graph is internally consistent.
        let g = build(&files);
        let n = g.nodes.len();
        for e in &g.edges {
            prop_assert!(e.from < n, "dangling caller in {:?}", src);
            prop_assert!(e.to < n, "dangling callee in {:?}", src);
        }
        for (i, node) in g.nodes.iter().enumerate() {
            prop_assert!(node.span.0 <= node.span.1, "inverted span in {:?}", src);
            if let Some((b0, b1)) = node.body {
                prop_assert!(b0 <= b1);
                // The innermost-body lookup must find *a* node whose
                // body contains the offset (the node itself, or a fn
                // nested inside it).
                let found = g.enclosing_fn(node.file, b0);
                prop_assert!(found.is_some(), "body start of node {i} unclaimed");
            }
        }

        // Reachability stays in bounds (start is excluded by contract
        // unless it sits on a cycle).
        if n > 0 {
            let r = g.reachable_from(0);
            prop_assert!(r.iter().all(|&i| i < n));
            let b = g.reaching(n - 1);
            prop_assert!(b.iter().all(|&i| i < n));
        }

        // Determinism: a second build from identical inputs is
        // bit-identical in everything the rules consume.
        let g2 = build(&files);
        prop_assert_eq!(fingerprint(&g), fingerprint(&g2));

        // Stats are consistent with the edge list.
        let stats = g.stats(files.len());
        prop_assert_eq!(stats.edges, g.edges.len());
        prop_assert_eq!(stats.edges_high + stats.edges_low, stats.edges);
        prop_assert_eq!(stats.fns, n);
    }
}
