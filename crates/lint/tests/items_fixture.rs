//! Fixture-driven item-parser test: parses `fixtures/items_tree.rs`
//! (nested modules, impls, traits, and generic fns with `->` arrows in
//! their where-clauses) and pins the exact tree shape the semantic
//! rules consume.

use alert_lint::items::{parse, walk, Item, ItemKind, Vis};
use alert_lint::lexer::{lex, mask};

fn parse_fixture() -> (String, Vec<Item>) {
    let src = include_str!("fixtures/items_tree.rs").to_string();
    let tokens = lex(&src);
    let masked = mask(&src, &tokens);
    (src, parse(&masked))
}

fn shape(items: &[Item]) -> Vec<(ItemKind, &str, Vis)> {
    items
        .iter()
        .map(|i| (i.kind, i.name.as_str(), i.vis))
        .collect()
}

#[test]
fn top_level_shape_is_pinned() {
    let (_, items) = parse_fixture();
    assert_eq!(
        shape(&items),
        vec![
            (ItemKind::Mod, "outer", Vis::Pub),
            (ItemKind::Use, "outer::inner::leaf", Vis::Pub),
            (ItemKind::Trait, "Step", Vis::Pub),
            (ItemKind::Const, "LIMIT", Vis::Private),
            (ItemKind::Fn, "root_fn", Vis::Private),
        ]
    );
}

#[test]
fn nested_modules_and_impls_nest() {
    let (_, items) = parse_fixture();
    let outer = &items[0];
    assert_eq!(
        shape(&outer.children),
        vec![
            (ItemKind::Mod, "inner", Vis::Pub),
            (ItemKind::Type, "Gadget", Vis::Pub),
            (ItemKind::Impl, "Gadget", Vis::Private),
        ]
    );
    let inner = &outer.children[0];
    assert_eq!(
        shape(&inner.children),
        vec![(ItemKind::Fn, "leaf", Vis::Pub)]
    );
    let gadget_impl = &outer.children[2];
    assert_eq!(
        shape(&gadget_impl.children),
        vec![
            (ItemKind::Fn, "apply", Vis::Pub),
            (ItemKind::Fn, "private_helper", Vis::Private),
        ]
    );
}

#[test]
fn arrow_in_where_clause_does_not_eat_the_body() {
    let (src, items) = parse_fixture();
    let apply = &items[0].children[2].children[0];
    assert_eq!(apply.name, "apply");
    // The declared return type and the where-clause (with its own
    // `->` inside `Fn(u32) -> u32`) both land in `ret`…
    assert!(apply.ret.contains("u32"), "ret: {}", apply.ret);
    assert!(apply.ret.contains("where"), "ret: {}", apply.ret);
    // …and the body span still starts at the real body, not inside the
    // where-clause.
    let (b0, b1) = apply.body.expect("apply has a body");
    assert!(src[b0..b1].contains("f(self.state)"), "{}", &src[b0..b1]);
    // Same for the free fn whose where-clause spans lines.
    let root = items.last().expect("root_fn");
    let (r0, r1) = root.body.expect("root_fn has a body");
    assert!(src[r0..r1].contains("xs.len()"), "{}", &src[r0..r1]);
}

#[test]
fn trait_methods_are_children() {
    let (_, items) = parse_fixture();
    let tr = &items[2];
    assert_eq!(
        shape(&tr.children),
        vec![(ItemKind::Fn, "step", Vis::Private)]
    );
    assert_eq!(tr.children[0].ret.trim(), "-> bool");
}

#[test]
fn walk_visits_every_fn_with_module_path() {
    let (_, items) = parse_fixture();
    let mut fns: Vec<String> = Vec::new();
    walk(&items, &mut |item, mods, self_ty| {
        if item.kind == ItemKind::Fn {
            fns.push(format!(
                "{}::{}{}",
                mods.join("::"),
                self_ty.map(|t| format!("{t}::")).unwrap_or_default(),
                item.name
            ));
        }
    });
    fns.sort();
    assert_eq!(
        fns,
        vec![
            "::Step::step",
            "::root_fn",
            "outer::Gadget::apply",
            "outer::Gadget::private_helper",
            "outer::inner::leaf",
        ]
    );
}
