//! CLI for the workspace invariant checker.
//!
//! ```text
//! alert-lint [--root DIR] [--json PATH] [--json-only] [--quiet]
//! ```
//!
//! Scans the workspace (auto-detected from the current directory unless
//! `--root` is given), writes `LINT.json` at the workspace root (or
//! `--json PATH`), prints the human table, and exits:
//!
//! * `0` — clean (every violation suppressed with a reasoned allow);
//! * `1` — unsuppressed violations;
//! * `2` — usage or I/O error.
//!
//! `--json-only` prints the JSON document to stdout instead of the
//! human table (the `LINT.json` file is still written), so CI and
//! scripts can pipe the report without scraping: exit codes unchanged.
//! `--quiet` suppresses all stdout output.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: Option<PathBuf>,
    json: Option<PathBuf>,
    json_only: bool,
    quiet: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: None,
        json: None,
        json_only: false,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = Some(PathBuf::from(it.next().ok_or("--root needs a directory")?));
            }
            "--json" => {
                args.json = Some(PathBuf::from(it.next().ok_or("--json needs a path")?));
            }
            "--json-only" => args.json_only = true,
            "--quiet" => args.quiet = true,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("alert-lint: {e}");
            eprintln!("usage: alert-lint [--root DIR] [--json PATH] [--json-only] [--quiet]");
            return ExitCode::from(2);
        }
    };
    let root = match args.root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| alert_lint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("alert-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let report = match alert_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("alert-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let json_path = args.json.unwrap_or_else(|| root.join("LINT.json"));
    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
        eprintln!("alert-lint: writing {}: {e}", json_path.display());
        return ExitCode::from(2);
    }
    if args.json_only {
        println!("{}", report.to_json());
    } else if !args.quiet {
        print!("{}", report.human_table());
        println!("report: {}", json_path.display());
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
