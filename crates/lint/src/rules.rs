//! The rule catalog and the context-aware rule engine.
//!
//! Rules scan the **masked** source (comments and literals blanked by
//! [`crate::lexer::mask`]) so they can never fire on prose, and consult
//! the [`FileContext`] so the same textual pattern is a violation in
//! one place and sanctioned in another (wall-clock reads: fatal in a
//! decision path, the whole point of a bench bin).
//!
//! Suppression is *only* via inline annotations:
//!
//! ```text
//! // lint:allow(rule-a, rule-b): reason the invariant holds here
//! ```
//!
//! A trailing annotation covers its own line; a standalone one covers
//! the next line that contains code. An annotation with an empty
//! reason, an unknown rule id, or one that suppresses nothing is
//! itself a violation (`allow-needs-reason` / `unused-allow`), so the
//! allow ledger cannot silently rot. See DESIGN.md §9 for the catalog
//! rationale and how to add a rule.

use crate::context::{FileContext, FileKind};
use crate::lexer::{mask, TokKind, Token};
use serde::Serialize;

/// Rule identifiers (the strings used in `lint:allow(...)`).
pub const NO_PANIC: &str = "no-panic";
/// See [`NO_PANIC`].
pub const NO_WALL_CLOCK: &str = "no-wall-clock";
/// See [`NO_PANIC`].
pub const NO_UNSEEDED_RNG: &str = "no-unseeded-rng";
/// See [`NO_PANIC`].
pub const NO_HASH_ITERATION: &str = "no-hash-iteration";
/// See [`NO_PANIC`].
pub const NAN_UNSAFE_COMPARE: &str = "nan-unsafe-compare";
/// See [`NO_PANIC`]. Semantic rule ([`crate::semantic`]).
pub const PANIC_REACHABILITY: &str = "panic-reachability";
/// See [`NO_PANIC`]. Semantic rule ([`crate::semantic`]).
pub const CRATE_LAYER_DAG: &str = "crate-layer-dag";
/// See [`NO_PANIC`]. Semantic rule ([`crate::semantic`]).
pub const LOCK_ORDER: &str = "lock-order";
/// See [`NO_PANIC`]. Semantic rule ([`crate::semantic`]).
pub const RNG_PROVENANCE: &str = "rng-provenance";
/// See [`NO_PANIC`].
pub const METRIC_NAME_DISCIPLINE: &str = "metric-name-discipline";
/// See [`NO_PANIC`].
pub const ALLOW_NEEDS_REASON: &str = "allow-needs-reason";
/// See [`NO_PANIC`].
pub const UNUSED_ALLOW: &str = "unused-allow";

/// One catalog entry, for reports and allow validation.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct RuleInfo {
    /// The id used in `lint:allow(...)`.
    pub id: &'static str,
    /// One-line rationale.
    pub summary: &'static str,
}

/// The full catalog. Order is the severity-agnostic display order.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: NO_PANIC,
        summary: "library code must not contain panic-capable sites \
                  (unwrap/expect/panic!/unreachable!/todo!/unimplemented!/\
                  integer-literal indexing); return Result or justify the invariant",
    },
    RuleInfo {
        id: NO_WALL_CLOCK,
        summary: "no Instant/SystemTime outside bench bins and the metering module \
                  (crates/stats cputime); decision paths meter on alert-stats::cputime",
    },
    RuleInfo {
        id: NO_UNSEEDED_RNG,
        summary: "no thread_rng/from_entropy/OsRng anywhere — all randomness is \
                  frozen behind seeded streams for replay identity",
    },
    RuleInfo {
        id: NO_HASH_ITERATION,
        summary: "no HashMap/HashSet in decision/realization code — iteration \
                  order is nondeterministic; use BTreeMap/Vec or justify that \
                  the container is never iterated",
    },
    RuleInfo {
        id: NAN_UNSAFE_COMPARE,
        summary: "no partial_cmp().unwrap()/expect() and no ==/!= against float \
                  literals; use f64::total_cmp or \
                  alert-core::select::{lex2_better,lex3_better}",
    },
    RuleInfo {
        id: PANIC_REACHABILITY,
        summary: "assert!-family sites in protected library code must document \
                  `# Panics`, carry a reasoned allow, or be unreachable from the \
                  crate's pub API (reachability over the approximate call graph)",
    },
    RuleInfo {
        id: CRATE_LAYER_DAG,
        summary: "cross-crate references must follow the layer DAG stats < platform \
                  < models < workload < core < sched < bench/lint — strictly \
                  downward, including use-level re-exports Cargo.toml cannot see",
    },
    RuleInfo {
        id: LOCK_ORDER,
        summary: "Mutex/RwLock acquired-while-held order must be acyclic across \
                  fns (call-graph propagated); a cycle is a potential deadlock",
    },
    RuleInfo {
        id: RNG_PROVENANCE,
        summary: "every RNG construction must trace to a named seed/stream source \
                  (stream_rng/task_rng/derive_seed or a literal seed); no RNG born \
                  from another RNG's output, no rand::random",
    },
    RuleInfo {
        id: METRIC_NAME_DISCIPLINE,
        summary: "metric registration/recording calls (declare_counter/declare_gauge/\
                  declare_histogram/counter_add/gauge_set/histogram_observe) must \
                  pass a 'static string-literal name; no format!/computed names \
                  on the recording path",
    },
    RuleInfo {
        id: ALLOW_NEEDS_REASON,
        summary: "every lint:allow must name known rules and carry a non-empty \
                  reason after a colon",
    },
    RuleInfo {
        id: UNUSED_ALLOW,
        summary: "a lint:allow that suppresses nothing is stale and must be removed",
    },
];

/// True iff `id` names a catalog rule.
pub fn known_rule(id: &str) -> bool {
    RULES.iter().any(|r| r.id == id)
}

/// Paths (workspace-relative prefixes or exact files) that constitute
/// decision/realization code, where hash-container nondeterminism can
/// change what the system *does* rather than just how logs are ordered.
const DECISION_PATHS: &[&str] = &[
    "crates/core/src/",          // estimators, selection, fast lane
    "crates/sched/src/alert.rs", // ALERT scheduler decisions
    "crates/sched/src/oracle.rs",
    "crates/sched/src/sys_only.rs",
    "crates/sched/src/no_coord.rs",
    "crates/sched/src/app_only.rs",
    "crates/sched/src/env.rs", // environment realization
    "crates/workload/src/script.rs",
    "crates/workload/src/scenario.rs",
];

/// The one module allowed to touch the wall clock outside bench code:
/// it *implements* the sanctioned meter (CPU clock with wall fallback).
const METERING_MODULE: &str = "crates/stats/src/cputime.rs";

/// One unsuppressed finding.
#[derive(Debug, Clone, Serialize)]
pub struct Violation {
    /// Catalog rule id.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The source line, trimmed.
    pub snippet: String,
    /// What is wrong and what to do instead.
    pub message: String,
}

/// One `lint:allow` annotation that suppressed at least one finding.
#[derive(Debug, Clone, Serialize)]
pub struct AllowEntry {
    /// Rules the annotation names.
    pub rules: Vec<String>,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the annotation.
    pub line: usize,
    /// The justification after the colon.
    pub reason: String,
    /// How many findings it suppressed.
    pub suppressed: usize,
}

/// Everything the engine found in one file.
#[derive(Debug, Default)]
pub struct FileFindings {
    /// Unsuppressed violations.
    pub violations: Vec<Violation>,
    /// The allow ledger (annotations that suppressed something).
    pub allowed: Vec<AllowEntry>,
}

/// The lexical pass result for one file, before suppression. The
/// workspace driver appends semantic findings to `raw` and then calls
/// [`resolve_scan`]; `check_file` composes the two for lexical-only use.
pub struct FileScan {
    pub(crate) raw: Vec<RawViolation>,
    pub(crate) allows: Vec<Allow>,
}

impl FileScan {
    /// The allow annotations as (covered line, rules named) — the view
    /// the semantic pass uses to treat reasoned allows as taint sinks.
    pub(crate) fn allow_view(&self) -> Vec<(Option<usize>, Vec<String>)> {
        self.allows
            .iter()
            .map(|a| (a.target_line, a.rules.clone()))
            .collect()
    }
}

/// Runs the lexical rules and parses allows for one file.
pub fn scan_file(ctx: &FileContext, src: &str, tokens: &[Token]) -> FileScan {
    let masked = mask(src, tokens);
    let lines = LineIndex::new(src);
    let mut raw = Vec::new();

    scan_identifiers(ctx, &masked, &lines, src, &mut raw);
    scan_literal_index(ctx, &masked, &lines, src, &mut raw);
    scan_float_eq(ctx, &masked, &lines, src, &mut raw);
    scan_metric_names(ctx, &masked, tokens, &mut raw);

    let allows = parse_allows(ctx, src, tokens, &masked, &lines, &mut raw);
    FileScan { raw, allows }
}

/// Applies suppression to a (possibly semantically-extended) scan.
pub fn resolve_scan(ctx: &FileContext, scan: FileScan, src: &str) -> FileFindings {
    let lines = LineIndex::new(src);
    resolve(ctx, scan.raw, scan.allows, &lines, src)
}

/// Runs every lexical rule over one lexed file (unit-test entry; the
/// workspace driver interleaves the semantic pass between scan and
/// resolve).
pub fn check_file(ctx: &FileContext, src: &str, tokens: &[Token]) -> FileFindings {
    resolve_scan(ctx, scan_file(ctx, src, tokens), src)
}

// ---------------------------------------------------------------- engine

struct LineIndex {
    /// Byte offset of the start of each line.
    starts: Vec<usize>,
}

impl LineIndex {
    fn new(src: &str) -> Self {
        let mut starts = vec![0];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// 1-based line number of a byte offset.
    fn line_of(&self, offset: usize) -> usize {
        self.starts.partition_point(|&s| s <= offset)
    }

    /// Byte range of a 1-based line (without the newline).
    fn span_of(&self, line: usize, total: usize) -> (usize, usize) {
        let start = self.starts[line - 1];
        let end = self
            .starts
            .get(line)
            .map_or(total, |&next| next.saturating_sub(1));
        (start, end)
    }
}

/// A rule hit before suppression.
pub(crate) struct RawViolation {
    pub(crate) rule: &'static str,
    pub(crate) offset: usize,
    pub(crate) message: String,
}

fn snippet(src: &str, lines: &LineIndex, line: usize) -> String {
    let (s, e) = lines.span_of(line, src.len());
    src[s..e].trim().to_string()
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Next non-whitespace byte at or after `i`.
fn next_nonws(masked: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < masked.len() {
        if !masked[i].is_ascii_whitespace() {
            return Some((i, masked[i]));
        }
        i += 1;
    }
    None
}

/// Previous non-whitespace byte strictly before `i`.
fn prev_nonws(masked: &[u8], i: usize) -> Option<(usize, u8)> {
    (0..i)
        .rev()
        .map(|j| (j, masked[j]))
        .find(|&(_, b)| !b.is_ascii_whitespace())
}

/// Identifier-driven rules: panics, clocks, RNG, hash containers,
/// `partial_cmp(..).unwrap()`.
fn scan_identifiers(
    ctx: &FileContext,
    masked: &[u8],
    lines: &LineIndex,
    src: &str,
    out: &mut Vec<RawViolation>,
) {
    let mut i = 0;
    while i < masked.len() {
        if !is_word(masked[i]) || (i > 0 && is_word(masked[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < masked.len() && is_word(masked[i]) {
            i += 1;
        }
        let word = &masked[start..i];
        let after = next_nonws(masked, i).map(|(_, b)| b);
        let dotted = prev_nonws(masked, start).map(|(_, b)| b) == Some(b'.');
        match word {
            b"unwrap" | b"expect"
                if after == Some(b'(') && dotted && rule_applies(NO_PANIC, ctx, start) =>
            {
                let w = String::from_utf8_lossy(word);
                out.push(RawViolation {
                    rule: NO_PANIC,
                    offset: start,
                    message: format!(
                        ".{w}() can panic; return a Result/Option or annotate the invariant"
                    ),
                });
            }
            b"panic" | b"unreachable" | b"todo" | b"unimplemented"
                if after == Some(b'!') && rule_applies(NO_PANIC, ctx, start) =>
            {
                let w = String::from_utf8_lossy(word);
                out.push(RawViolation {
                    rule: NO_PANIC,
                    offset: start,
                    message: format!("{w}! aborts the session; library code must not panic"),
                });
            }
            b"Instant" | b"SystemTime" if rule_applies(NO_WALL_CLOCK, ctx, start) => {
                let w = String::from_utf8_lossy(word);
                out.push(RawViolation {
                    rule: NO_WALL_CLOCK,
                    offset: start,
                    message: format!(
                        "{w} is ambient wall time; meter on alert_stats::cputime \
                         (DecisionStopwatch) or move the code to a bench bin"
                    ),
                });
            }
            b"thread_rng" | b"ThreadRng" | b"from_entropy" | b"from_os_rng" | b"OsRng"
                if rule_applies(NO_UNSEEDED_RNG, ctx, start) =>
            {
                let w = String::from_utf8_lossy(word);
                out.push(RawViolation {
                    rule: NO_UNSEEDED_RNG,
                    offset: start,
                    message: format!(
                        "{w} draws entropy outside the frozen seeded streams and \
                         breaks capture/replay identity"
                    ),
                });
            }
            b"HashMap" | b"HashSet" if rule_applies(NO_HASH_ITERATION, ctx, start) => {
                let w = String::from_utf8_lossy(word);
                out.push(RawViolation {
                    rule: NO_HASH_ITERATION,
                    offset: start,
                    message: format!(
                        "{w} in decision/realization code: iteration order is \
                         nondeterministic; use BTreeMap/Vec or justify that this \
                         container is never iterated"
                    ),
                });
            }
            b"partial_cmp"
                if after == Some(b'(')
                    && rule_applies(NAN_UNSAFE_COMPARE, ctx, start)
                    && partial_cmp_then_panic(masked, i) =>
            {
                out.push(RawViolation {
                    rule: NAN_UNSAFE_COMPARE,
                    offset: start,
                    message: "partial_cmp().unwrap()/expect() panics on NaN; use \
                              f64::total_cmp or the NaN-rejecting \
                              alert_core::select::{lex2_better, lex3_better}"
                        .to_string(),
                });
            }
            _ => {}
        }
    }
    let _ = (lines, src);
}

/// After a `partial_cmp` identifier ending at `i`: does the call chain
/// continue with `.unwrap(` / `.expect(`? Follows the balanced argument
/// parens first.
fn partial_cmp_then_panic(masked: &[u8], i: usize) -> bool {
    let Some((open, b'(')) = next_nonws(masked, i) else {
        return false;
    };
    let mut depth = 0usize;
    let mut j = open;
    while j < masked.len() {
        match masked[j] {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        j += 1;
    }
    if j >= masked.len() {
        return false;
    }
    let Some((dot, b'.')) = next_nonws(masked, j + 1) else {
        return false;
    };
    let Some((w, _)) = next_nonws(masked, dot + 1) else {
        return false;
    };
    let mut e = w;
    while e < masked.len() && is_word(masked[e]) {
        e += 1;
    }
    // Full-word match only: `.unwrap_or(Ordering::Equal)` is NaN-safe.
    matches!(&masked[w..e], b"unwrap" | b"expect")
}

/// `xs[0]`-style indexing with an integer literal: the classic
/// off-by-one panic site (`first()`/`get()` exist). Heuristic: a `[`
/// whose previous non-whitespace byte ends an expression (identifier,
/// `)`, or `]`) and whose content is exactly an integer literal.
///
/// Indexing into a SCREAMING_CASE receiver (`P[4]`) is skipped: those
/// are fixed-length `const` arrays, where rustc's deny-by-default
/// `unconditional_panic` lint already rejects an out-of-bounds literal
/// index at compile time. The rule targets slices and `Vec`s, whose
/// lengths rustc cannot see.
fn scan_literal_index(
    ctx: &FileContext,
    masked: &[u8],
    lines: &LineIndex,
    src: &str,
    out: &mut Vec<RawViolation>,
) {
    for i in 0..masked.len() {
        if masked[i] != b'[' {
            continue;
        }
        let Some((p, prev)) = prev_nonws(masked, i) else {
            continue;
        };
        if !(is_word(prev) || prev == b')' || prev == b']') {
            continue;
        }
        if is_word(prev) && is_const_ident(masked, p) {
            continue;
        }
        let mut j = i + 1;
        let digits_start = j;
        while j < masked.len() && (masked[j].is_ascii_digit() || masked[j] == b'_') {
            j += 1;
        }
        if j == digits_start || j >= masked.len() || masked[j] != b']' {
            continue;
        }
        if rule_applies(NO_PANIC, ctx, i) {
            out.push(RawViolation {
                rule: NO_PANIC,
                offset: i,
                message: "integer-literal indexing panics out of bounds; use \
                          .get(n)/.first() or annotate why the length is guaranteed"
                    .to_string(),
            });
        }
    }
    let _ = (lines, src);
}

/// Is the identifier ending at byte `last` SCREAMING_CASE (uppercase,
/// digits, underscores — with at least one uppercase letter)?
fn is_const_ident(masked: &[u8], last: usize) -> bool {
    let mut start = last;
    while start > 0 && is_word(masked[start - 1]) {
        start -= 1;
    }
    let word = &masked[start..=last];
    word.iter().any(|b| b.is_ascii_uppercase())
        && word
            .iter()
            .all(|&b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

/// `x == 0.0` / `x != 1.5`: equality against a float literal is almost
/// always a NaN-unsafe or rounding-unsafe comparison. Tuple fields
/// (`a.0 == b.0`) are not float literals and do not match.
fn scan_float_eq(
    ctx: &FileContext,
    masked: &[u8],
    lines: &LineIndex,
    src: &str,
    out: &mut Vec<RawViolation>,
) {
    let mut i = 0;
    while i + 1 < masked.len() {
        let op_is_eq = masked[i] == b'=' && masked[i + 1] == b'=';
        let op_is_ne = masked[i] == b'!' && masked[i + 1] == b'=';
        if !(op_is_eq || op_is_ne) {
            i += 1;
            continue;
        }
        // Exclude `<=`, `>=`, `==` scanned mid-token, and compound ops.
        if op_is_eq && i > 0 && matches!(masked[i - 1], b'<' | b'>' | b'!' | b'=') {
            i += 2;
            continue;
        }
        if masked.get(i + 2) == Some(&b'=') {
            i += 3;
            continue;
        }
        let rhs_float = rhs_is_float_literal(masked, i + 2);
        let lhs_float = lhs_is_float_literal(masked, i);
        if (rhs_float || lhs_float) && rule_applies(NAN_UNSAFE_COMPARE, ctx, i) {
            out.push(RawViolation {
                rule: NAN_UNSAFE_COMPARE,
                offset: i,
                message: "==/!= against a float literal is NaN/rounding-unsafe; \
                          compare with total_cmp, an epsilon, or annotate the \
                          exact-value invariant"
                    .to_string(),
            });
        }
        i += 2;
    }
    let _ = (lines, src);
}

/// Does a float literal (`12.5`, `1_000.0`, optionally `-`-signed)
/// start at or after `i`?
fn rhs_is_float_literal(masked: &[u8], i: usize) -> bool {
    let Some((mut j, b)) = next_nonws(masked, i) else {
        return false;
    };
    if b == b'-' {
        let Some((k, _)) = next_nonws(masked, j + 1) else {
            return false;
        };
        j = k;
    }
    let digits = |mut k: usize| {
        let s = k;
        while k < masked.len() && (masked[k].is_ascii_digit() || masked[k] == b'_') {
            k += 1;
        }
        (k > s).then_some(k)
    };
    let Some(dot) = digits(j) else { return false };
    if masked.get(dot) != Some(&b'.') {
        return false;
    }
    // `0..10` is a range, not a float.
    digits(dot + 1).is_some() && masked.get(dot + 1) != Some(&b'.')
}

/// Does a float literal end just before operator position `i`? Walks
/// backwards over `digits . digits` and requires the byte before the
/// leading digits not to extend an identifier or field access (so
/// `a.0 == …` is not a float).
fn lhs_is_float_literal(masked: &[u8], i: usize) -> bool {
    let Some((j, b)) = prev_nonws(masked, i) else {
        return false;
    };
    if !b.is_ascii_digit() {
        return false;
    }
    // Walk back over the fraction digits to what must be the dot.
    let mut k = j;
    while masked[k].is_ascii_digit() || masked[k] == b'_' {
        if k == 0 {
            return false; // bare integer at start of file
        }
        k -= 1;
    }
    if masked[k] != b'.' || k == 0 {
        return false;
    }
    // At least one integer digit before the dot (`a.0` has none:
    // that is a tuple-field access, not a float).
    let mut m = k - 1;
    if !masked[m].is_ascii_digit() {
        return false;
    }
    while masked[m].is_ascii_digit() || masked[m] == b'_' {
        if m == 0 {
            return true; // literal starts at offset 0
        }
        m -= 1;
    }
    // The byte before the literal must not extend an identifier or a
    // field chain (`x1.0`, `a.1.0`).
    !(is_word(masked[m]) || masked[m] == b'.')
}

/// The metric registration/recording methods whose first argument is a
/// metric name (see `alert_stats::telemetry::MetricsRegistry`). The
/// registry's snapshot keys on these names, so a computed name both
/// allocates on the hot path and breaks snapshot byte-determinism.
const METRIC_FNS: &[&[u8]] = &[
    b"declare_counter",
    b"declare_gauge",
    b"declare_histogram",
    b"counter_add",
    b"gauge_set",
    b"histogram_observe",
];

/// `metric-name-discipline`: every call to a [`METRIC_FNS`] method must
/// pass a string literal (plain or raw) as its first argument — the
/// `&'static str` contract means a `format!`ed or forwarded name had to
/// be leaked or computed on the recording path.
fn scan_metric_names(
    ctx: &FileContext,
    masked: &[u8],
    tokens: &[Token],
    out: &mut Vec<RawViolation>,
) {
    let mut i = 0;
    while i < masked.len() {
        if !is_word(masked[i]) || (i > 0 && is_word(masked[i - 1])) {
            i += 1;
            continue;
        }
        let start = i;
        while i < masked.len() && is_word(masked[i]) {
            i += 1;
        }
        let word = &masked[start..i];
        if !METRIC_FNS.contains(&word) {
            continue;
        }
        // Call sites only: a definition (`fn counter_add(...)`) states
        // the `&'static str` contract rather than recording anything.
        if preceded_by_fn(masked, start) {
            continue;
        }
        let Some((open, b'(')) = next_nonws(masked, i) else {
            continue;
        };
        if rule_applies(METRIC_NAME_DISCIPLINE, ctx, start)
            && !first_arg_is_str_literal(masked, tokens, open)
        {
            let w = String::from_utf8_lossy(word);
            out.push(RawViolation {
                rule: METRIC_NAME_DISCIPLINE,
                offset: start,
                message: format!(
                    "{w} must take a 'static string-literal metric name registered \
                     at construction; no format!/computed names on the recording path"
                ),
            });
        }
    }
}

/// Is the identifier starting at `start` preceded by the `fn` keyword?
fn preceded_by_fn(masked: &[u8], start: usize) -> bool {
    let Some((p, b)) = prev_nonws(masked, start) else {
        return false;
    };
    if !is_word(b) {
        return false;
    }
    let mut s = p;
    while s > 0 && is_word(masked[s - 1]) {
        s -= 1;
    }
    &masked[s..=p] == b"fn"
}

/// Does the argument list opening at `open` start with a string literal
/// (plain or raw)? Literal bytes are blanked in `masked`, so the check
/// consults the token tiling: walk forward from the paren skipping
/// whitespace (which also covers blanked comments); the first position
/// that starts a `Str`/`RawStr` token is a literal name, and any other
/// code byte means the name is computed.
fn first_arg_is_str_literal(masked: &[u8], tokens: &[Token], open: usize) -> bool {
    let mut j = open + 1;
    while j < masked.len() {
        if let Ok(k) = tokens.binary_search_by(|t| t.start.cmp(&j)) {
            if matches!(tokens[k].kind, TokKind::Str | TokKind::RawStr) {
                return true;
            }
        }
        if masked[j].is_ascii_whitespace() {
            j += 1;
        } else {
            return false;
        }
    }
    false
}

/// Which contexts each rule bites in.
fn rule_applies(rule: &str, ctx: &FileContext, offset: usize) -> bool {
    match rule {
        NO_PANIC => ctx.kind == FileKind::Library && !ctx.in_test(offset),
        NO_WALL_CLOCK => {
            ctx.kind != FileKind::Bench && ctx.path != METERING_MODULE && !ctx.in_test(offset)
        }
        // Frozen randomness is global policy: tests and benches too.
        NO_UNSEEDED_RNG => true,
        NO_HASH_ITERATION => {
            !ctx.in_test(offset)
                && DECISION_PATHS
                    .iter()
                    .any(|p| ctx.path == *p || (p.ends_with('/') && ctx.path.starts_with(p)))
        }
        NAN_UNSAFE_COMPARE => !ctx.in_test(offset),
        METRIC_NAME_DISCIPLINE => ctx.kind == FileKind::Library && !ctx.in_test(offset),
        _ => true,
    }
}

// ---------------------------------------------------------------- allows

pub(crate) struct Allow {
    rules: Vec<String>,
    line: usize,
    target_line: Option<usize>,
    reason: String,
    suppressed: usize,
    /// Per-rule suppression counts: a named rule that never fires on
    /// the covered line is flagged as a stale member (`unused-allow`),
    /// keeping multi-rule annotations honest as rules get smarter.
    suppressed_by: std::collections::BTreeMap<String, usize>,
}

/// Parses `lint:allow` annotations out of line comments. Malformed ones
/// (bad grammar, unknown rule, empty reason) become `allow-needs-reason`
/// violations immediately.
fn parse_allows(
    ctx: &FileContext,
    src: &str,
    tokens: &[Token],
    masked: &[u8],
    lines: &LineIndex,
    raw: &mut Vec<RawViolation>,
) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in tokens {
        if t.kind != crate::lexer::TokKind::LineComment {
            continue;
        }
        // Comment content past `//` and any doc markers.
        let content = src[t.start + 2..t.end]
            .trim_start_matches(['/', '!'])
            .trim();
        let Some(rest) = content.strip_prefix("lint:allow") else {
            continue;
        };
        let line = lines.line_of(t.start);
        let bad = |msg: &str, raw: &mut Vec<RawViolation>| {
            raw.push(RawViolation {
                rule: ALLOW_NEEDS_REASON,
                offset: t.start,
                message: msg.to_string(),
            });
        };
        let Some(rest) = rest.trim_start().strip_prefix('(') else {
            bad("lint:allow must be followed by (rule, ...): reason", raw);
            continue;
        };
        let Some(close) = rest.find(')') else {
            bad("lint:allow rule list is missing its closing paren", raw);
            continue;
        };
        let rule_list: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        if rule_list.is_empty() {
            bad("lint:allow names no rules", raw);
            continue;
        }
        if let Some(unknown) = rule_list.iter().find(|r| !known_rule(r)) {
            bad(&format!("lint:allow names unknown rule `{unknown}`"), raw);
            continue;
        }
        let after = rest[close + 1..].trim_start();
        let Some(reason) = after.strip_prefix(':').map(str::trim) else {
            bad("lint:allow needs `: reason` after the rule list", raw);
            continue;
        };
        if reason.is_empty() {
            bad("lint:allow reason must not be empty", raw);
            continue;
        }
        allows.push(Allow {
            rules: rule_list,
            line,
            target_line: allow_target(masked, lines, t.start, line),
            reason: reason.to_string(),
            suppressed: 0,
            suppressed_by: std::collections::BTreeMap::new(),
        });
    }
    let _ = ctx;
    allows
}

/// Which line an annotation covers: its own if code precedes it on the
/// line, else the next line containing code.
fn allow_target(
    masked: &[u8],
    lines: &LineIndex,
    comment_start: usize,
    line: usize,
) -> Option<usize> {
    let (line_start, _) = lines.span_of(line, masked.len());
    let leading_code = masked[line_start..comment_start]
        .iter()
        .any(|b| !b.is_ascii_whitespace());
    if leading_code {
        return Some(line);
    }
    for l in line + 1..=lines.starts.len() {
        let (s, e) = lines.span_of(l, masked.len());
        if masked[s..e.min(masked.len())]
            .iter()
            .any(|b| !b.is_ascii_whitespace())
        {
            return Some(l);
        }
    }
    None
}

/// Applies suppression and produces the final findings.
fn resolve(
    ctx: &FileContext,
    raw: Vec<RawViolation>,
    mut allows: Vec<Allow>,
    lines: &LineIndex,
    src: &str,
) -> FileFindings {
    let mut out = FileFindings::default();
    for v in raw {
        let line = lines.line_of(v.offset);
        // Meta-rules cannot be suppressed: an allow for the allow
        // grammar would be turtles all the way down.
        let suppressible = v.rule != ALLOW_NEEDS_REASON && v.rule != UNUSED_ALLOW;
        let allow = suppressible
            .then(|| {
                allows
                    .iter_mut()
                    .find(|a| a.target_line == Some(line) && a.rules.iter().any(|r| r == v.rule))
            })
            .flatten();
        match allow {
            Some(a) => {
                a.suppressed += 1;
                *a.suppressed_by.entry(v.rule.to_string()).or_insert(0) += 1;
            }
            None => out.violations.push(Violation {
                rule: v.rule.to_string(),
                file: ctx.path.clone(),
                line,
                snippet: snippet(src, lines, line),
                message: v.message,
            }),
        }
    }
    for a in allows {
        if a.suppressed == 0 {
            out.violations.push(Violation {
                rule: UNUSED_ALLOW.to_string(),
                file: ctx.path.clone(),
                line: a.line,
                snippet: snippet(src, lines, a.line),
                message: format!(
                    "lint:allow({}) suppresses nothing; remove the stale annotation",
                    a.rules.join(", ")
                ),
            });
        } else {
            // Per-rule honesty: each named rule must have fired at
            // least once on the covered line, or it is a stale member.
            for dead in a.rules.iter().filter(|r| !a.suppressed_by.contains_key(*r)) {
                out.violations.push(Violation {
                    rule: UNUSED_ALLOW.to_string(),
                    file: ctx.path.clone(),
                    line: a.line,
                    snippet: snippet(src, lines, a.line),
                    message: format!(
                        "lint:allow names `{dead}` but no {dead} finding fires on \
                         the covered line; drop the stale rule from the list"
                    ),
                });
            }
            out.allowed.push(AllowEntry {
                rules: a.rules,
                file: ctx.path.clone(),
                line: a.line,
                reason: a.reason,
                suppressed: a.suppressed,
            });
        }
    }
    out.violations.sort_by(|a, b| {
        (a.line, a.rule.as_str(), a.snippet.as_str()).cmp(&(
            b.line,
            b.rule.as_str(),
            b.snippet.as_str(),
        ))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::context_for;
    use crate::lexer::lex;

    fn run(path: &str, src: &str) -> FileFindings {
        let tokens = lex(src);
        let ctx = context_for(path, src);
        check_file(&ctx, src, &tokens)
    }

    fn rules_of(f: &FileFindings) -> Vec<&str> {
        f.violations.iter().map(|v| v.rule.as_str()).collect()
    }

    #[test]
    fn unwrap_in_library_fires() {
        let f = run("crates/core/src/x.rs", "fn f() { y.unwrap(); }");
        assert_eq!(rules_of(&f), vec![NO_PANIC]);
    }

    #[test]
    fn unwrap_or_is_fine() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { y.unwrap_or(0); y.unwrap_or_else(|| 1); y.unwrap_or_default(); }",
        );
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn unwrap_in_bench_or_test_is_fine() {
        for path in [
            "crates/bench/src/bin/fig3.rs",
            "tests/end_to_end.rs",
            "examples/quickstart.rs",
        ] {
            let f = run(path, "fn f() { y.unwrap(); panic!(); }");
            assert!(f.violations.is_empty(), "{path}: {:?}", f.violations);
        }
    }

    #[test]
    fn unwrap_in_cfg_test_is_fine() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn unwrap_in_comment_or_string_is_fine() {
        let src = "// call .unwrap() here\nfn f() { let s = \"x.unwrap()\"; let r = r#\"y.unwrap()\"#; }\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn panic_macros_fire() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { if a { panic!(\"x\") } else if b { unreachable!() } else { todo!() } }",
        );
        assert_eq!(rules_of(&f), vec![NO_PANIC, NO_PANIC, NO_PANIC]);
    }

    #[test]
    fn literal_index_fires_but_variable_index_does_not() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { let a = xs[0]; let b = xs[i]; let c = xs[1..]; }",
        );
        assert_eq!(rules_of(&f), vec![NO_PANIC]);
        assert!(f.violations[0].message.contains("indexing"));
    }

    #[test]
    fn const_array_literal_index_is_fine() {
        // Out-of-bounds literal indexing into a fixed-length const
        // array is a compile error (`unconditional_panic`), so the
        // heuristic skips SCREAMING_CASE receivers.
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { let y = P[4] * z + COEFFS[0]; let bad = xs[0]; }",
        );
        assert_eq!(rules_of(&f), vec![NO_PANIC]);
        assert!(f.violations[0].snippet.contains("xs[0]"));
    }

    #[test]
    fn array_type_and_attr_are_not_indexing() {
        let f = run(
            "crates/core/src/x.rs",
            "#[repr(align(8))]\nfn f(x: [u8; 4]) -> [f64; 2] { [0.0; 2] }",
        );
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn wall_clock_fires_outside_bench_and_metering() {
        let f = run("crates/sched/src/runtime.rs", "use std::time::Instant;\n");
        assert_eq!(rules_of(&f), vec![NO_WALL_CLOCK]);
        let f = run(
            "crates/bench/src/bin/runtime.rs",
            "use std::time::Instant;\n",
        );
        assert!(f.violations.is_empty());
        let f = run("crates/stats/src/cputime.rs", "use std::time::Instant;\n");
        assert!(f.violations.is_empty());
    }

    #[test]
    fn unseeded_rng_fires_even_in_tests() {
        let f = run("tests/end_to_end.rs", "let mut r = rand::thread_rng();\n");
        assert_eq!(rules_of(&f), vec![NO_UNSEEDED_RNG]);
    }

    #[test]
    fn hash_map_fires_only_on_decision_paths() {
        let src = "use std::collections::HashMap;\n";
        let f = run("crates/core/src/lane.rs", src);
        assert_eq!(rules_of(&f), vec![NO_HASH_ITERATION]);
        let f = run("crates/sched/src/registry.rs", src);
        assert!(f.violations.is_empty());
    }

    #[test]
    fn partial_cmp_unwrap_fires() {
        let f = run(
            "crates/bench/src/bin/fig3.rs",
            "fn f() { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }",
        );
        assert_eq!(rules_of(&f), vec![NAN_UNSAFE_COMPARE]);
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { let c = a.partial_cmp(&b).expect(\"finite\"); }",
        );
        // Fires both the NaN rule and no-panic (library code).
        assert!(rules_of(&f).contains(&NAN_UNSAFE_COMPARE));
        assert!(rules_of(&f).contains(&NO_PANIC));
    }

    #[test]
    fn partial_cmp_without_panic_is_fine() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { let c = a.partial_cmp(&b).map(|o| o.is_lt()); }",
        );
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn float_literal_eq_fires() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { if x == 0.0 { } if 1.5 != y { } }",
        );
        assert_eq!(rules_of(&f), vec![NAN_UNSAFE_COMPARE, NAN_UNSAFE_COMPARE]);
    }

    #[test]
    fn tuple_fields_ranges_and_ints_are_fine() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { if a.0 == b.0 { } if n == 3 { } for i in 0..10 { } if x <= 1.0 { } if x >= 0.0 { } }",
        );
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn metric_literal_names_are_fine() {
        let f = run(
            "crates/sched/src/telemetry.rs",
            "fn f(reg: &mut R) { reg.counter_add(\"decisions\", Scope::Global, 1); \
             reg.gauge_set(r#\"belief_mean\"#, Scope::Global, 1.0); }",
        );
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn metric_formatted_name_fires() {
        let f = run(
            "crates/sched/src/telemetry.rs",
            "fn f(reg: &mut R, id: u64) { \
             reg.counter_add(&format!(\"decisions_{id}\"), Scope::Global, 1); }",
        );
        assert_eq!(rules_of(&f), vec![METRIC_NAME_DISCIPLINE]);
    }

    #[test]
    fn metric_forwarded_name_fires() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f(reg: &mut R, name: &'static str) { \
             reg.histogram_observe(name, Scope::Global, 0.5); }",
        );
        assert_eq!(rules_of(&f), vec![METRIC_NAME_DISCIPLINE]);
    }

    #[test]
    fn metric_definition_sites_and_tests_are_exempt() {
        let src = "pub fn counter_add(&mut self, name: &'static str, n: u64) { \
                   self.raw_add(name, n); }\n\
                   #[cfg(test)]\nmod tests { fn t(reg: &mut R, n: &'static str) { \
                   reg.counter_add(n, Scope::Global, 1); } }\n";
        let f = run("crates/stats/src/telemetry.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
    }

    #[test]
    fn metric_rule_is_silent_outside_library_code() {
        let src = "fn f(reg: &mut R, n: &'static str) { reg.gauge_set(n, Scope::Global, 1.0); }";
        for path in ["crates/bench/src/bin/runtime.rs", "tests/telemetry.rs"] {
            let f = run(path, src);
            assert!(f.violations.is_empty(), "{path}: {:?}", f.violations);
        }
    }

    #[test]
    fn trailing_allow_suppresses_and_lands_in_ledger() {
        let src = "fn f() { y.unwrap(); } // lint:allow(no-panic): y was validated above\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.allowed.len(), 1);
        assert_eq!(f.allowed[0].reason, "y was validated above");
        assert_eq!(f.allowed[0].suppressed, 1);
    }

    #[test]
    fn standalone_allow_covers_next_code_line() {
        let src = "// lint:allow(no-panic): invariant: table is non-empty\n// (more prose)\nfn f() { y.unwrap(); }\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.allowed[0].suppressed, 1);
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        for src in [
            "fn f() { y.unwrap(); } // lint:allow(no-panic)\n",
            "fn f() { y.unwrap(); } // lint:allow(no-panic):\n",
            "fn f() { y.unwrap(); } // lint:allow(no-panic):   \n",
        ] {
            let f = run("crates/core/src/x.rs", src);
            assert!(
                rules_of(&f).contains(&ALLOW_NEEDS_REASON),
                "{src:?} -> {:?}",
                f.violations
            );
            // The unwrap stays unsuppressed too.
            assert!(rules_of(&f).contains(&NO_PANIC));
        }
    }

    #[test]
    fn allow_with_unknown_rule_is_a_violation() {
        let f = run(
            "crates/core/src/x.rs",
            "fn f() { y.unwrap(); } // lint:allow(no-panics): typo in rule id\n",
        );
        assert!(rules_of(&f).contains(&ALLOW_NEEDS_REASON));
    }

    #[test]
    fn unused_allow_is_a_violation() {
        let f = run(
            "crates/core/src/x.rs",
            "// lint:allow(no-panic): stale justification\nfn f() { let x = 1; }\n",
        );
        assert_eq!(rules_of(&f), vec![UNUSED_ALLOW]);
        assert!(f.allowed.is_empty());
    }

    #[test]
    fn allow_does_not_leak_to_other_lines() {
        let src = "fn f() { y.unwrap(); } // lint:allow(no-panic): only this line\nfn g() { z.unwrap(); }\n";
        let f = run("crates/core/src/x.rs", src);
        assert_eq!(rules_of(&f), vec![NO_PANIC]);
        assert_eq!(f.violations[0].line, 2);
    }

    #[test]
    fn allow_covers_multiple_hits_on_one_line() {
        let src = "fn f() { a.unwrap(); b.unwrap(); } // lint:allow(no-panic): both validated\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty());
        assert_eq!(f.allowed[0].suppressed, 2);
    }

    #[test]
    fn multi_rule_allow() {
        let src = "fn f() { t.partial_cmp(&u).unwrap(); } // lint:allow(no-panic, nan-unsafe-compare): inputs proven finite\n";
        let f = run("crates/core/src/x.rs", src);
        assert!(f.violations.is_empty(), "{:?}", f.violations);
        assert_eq!(f.allowed[0].suppressed, 2);
    }
}
