//! A hand-rolled lexical scanner for Rust source text.
//!
//! The linter's rules must never fire on text inside comments, string
//! literals, or char literals (a doc comment that *mentions* `unwrap()`
//! is not a panic site), so the first pass splits a file into a tiling
//! of [`Token`]s: plain code, line/block comments, and the literal
//! forms that can hide rule keywords. This is deliberately **not** a
//! full Rust lexer — code is left as one opaque span between literals —
//! but it handles every escape that matters for span integrity:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, C strings;
//! * raw strings `r"…"`/`r#"…"#` (any guard depth), raw byte/C strings;
//! * char and byte-char literals, disambiguated from lifetimes and
//!   loop labels (`'a'` vs `<'a>` vs `'outer:`).
//!
//! Invariants (property-tested in `tests/lexer_roundtrip.rs`):
//!
//! 1. tokens are non-empty and contiguous: `tok[i].end == tok[i+1].start`;
//! 2. they tile the input exactly: first starts at 0, last ends at
//!    `src.len()`, so concatenating the spans reproduces the input
//!    byte-for-byte;
//! 3. every token boundary lies on a UTF-8 character boundary;
//! 4. lexing never fails — unterminated literals/comments extend to
//!    end of input rather than erroring.

use serde::Serialize;

/// What a span of source text is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum TokKind {
    /// Plain code (anything not claimed by the kinds below).
    Code,
    /// `// …` up to (not including) the newline.
    LineComment,
    /// `/* … */`, nesting respected; unterminated runs to end of input.
    BlockComment,
    /// `"…"`, `b"…"`, or `c"…"` with escape handling.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#`, `cr#"…"#` at any guard depth.
    RawStr,
    /// `'x'`, `'\n'`, `'\u{1F600}'`, or `b'x'` — *not* lifetimes.
    Char,
}

/// One span of the tiling. Offsets are byte offsets into the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct Token {
    /// Span classification.
    pub kind: TokKind,
    /// Inclusive start byte offset.
    pub start: usize,
    /// Exclusive end byte offset.
    pub end: usize,
}

/// True for bytes that may continue an identifier. Non-ASCII bytes are
/// treated as identifier-continuing: Rust permits non-ASCII
/// identifiers, and over-approximating here only makes the scanner
/// *more* conservative about recognizing literal prefixes.
fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// True for bytes that may start an identifier.
fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

/// Splits `src` into a contiguous token tiling. Never fails; see the
/// module docs for the invariants.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src: src.as_bytes(),
        text: src,
        tokens: Vec::new(),
        code_start: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a [u8],
    text: &'a str,
    tokens: Vec<Token>,
    code_start: usize,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        let mut i = 0;
        while i < self.src.len() {
            let b = self.src[i];
            match b {
                b'/' if self.peek(i + 1) == Some(b'/') => {
                    self.flush_code(i);
                    i = self.scan_line_comment(i);
                }
                b'/' if self.peek(i + 1) == Some(b'*') => {
                    self.flush_code(i);
                    i = self.scan_block_comment(i);
                }
                b'"' => {
                    self.flush_code(i);
                    i = self.scan_string(i);
                }
                b'\'' => i = self.scan_quote(i),
                _ if is_ident_start(b) => {
                    // Consume the identifier whole, then check whether it
                    // is a literal prefix (`r`, `b`, `c`, `br`, `cr`)
                    // glued to a quote — `let bridge = 1` must not see
                    // `r` + `idge` as a raw-string start.
                    let id_end = self.ident_end(i);
                    i = self.after_ident(i, id_end);
                }
                _ => i += 1,
            }
        }
        self.flush_code(self.src.len());
        self.tokens
    }

    fn peek(&self, i: usize) -> Option<u8> {
        self.src.get(i).copied()
    }

    fn flush_code(&mut self, end: usize) {
        if end > self.code_start {
            self.tokens.push(Token {
                kind: TokKind::Code,
                start: self.code_start,
                end,
            });
        }
        self.code_start = end;
    }

    fn push(&mut self, kind: TokKind, start: usize, end: usize) -> usize {
        self.tokens.push(Token { kind, start, end });
        self.code_start = end;
        end
    }

    /// `// …` — ends *before* the newline so the newline stays in code.
    fn scan_line_comment(&mut self, start: usize) -> usize {
        let mut i = start + 2;
        while i < self.src.len() && self.src[i] != b'\n' {
            i += 1;
        }
        self.push(TokKind::LineComment, start, i)
    }

    /// `/* … */` with nesting; unterminated extends to end of input.
    fn scan_block_comment(&mut self, start: usize) -> usize {
        let mut i = start + 2;
        let mut depth = 1usize;
        while i < self.src.len() && depth > 0 {
            if self.src[i] == b'/' && self.peek(i + 1) == Some(b'*') {
                depth += 1;
                i += 2;
            } else if self.src[i] == b'*' && self.peek(i + 1) == Some(b'/') {
                depth -= 1;
                i += 2;
            } else {
                i += 1;
            }
        }
        self.push(TokKind::BlockComment, start, i)
    }

    /// `"…"` with `\"` and `\\` escapes; unterminated extends to EOF.
    /// `start` is the opening quote; the prefix (if any) was already
    /// claimed by the caller.
    fn scan_string_body(&mut self, token_start: usize, quote: usize) -> usize {
        let mut i = quote + 1;
        while i < self.src.len() {
            match self.src[i] {
                b'\\' => i += 2,
                b'"' => {
                    i += 1;
                    break;
                }
                _ => i += 1,
            }
        }
        self.push(TokKind::Str, token_start, i.min(self.src.len()))
    }

    fn scan_string(&mut self, start: usize) -> usize {
        self.scan_string_body(start, start)
    }

    /// Raw string starting at `token_start` whose guard hashes begin at
    /// `hash_start`: counts `#`s, expects `"`, then scans for `"` + the
    /// same number of `#`s. Returns `None` (no token emitted) if the
    /// text after the hashes is not a quote — then it wasn't a raw
    /// string at all.
    fn scan_raw_string(&mut self, token_start: usize, hash_start: usize) -> Option<usize> {
        let mut i = hash_start;
        while self.peek(i) == Some(b'#') {
            i += 1;
        }
        let guards = i - hash_start;
        if self.peek(i) != Some(b'"') {
            return None;
        }
        i += 1;
        while i < self.src.len() {
            if self.src[i] == b'"' {
                let close_end = i + 1 + guards;
                if self.src[i + 1..self.src.len().min(close_end)]
                    .iter()
                    .take_while(|&&b| b == b'#')
                    .count()
                    == guards
                    && close_end <= self.src.len()
                {
                    return Some(self.push(TokKind::RawStr, token_start, close_end));
                }
            }
            i += 1;
        }
        Some(self.push(TokKind::RawStr, token_start, self.src.len()))
    }

    /// `'` — either a char literal or a lifetime/label. `start` points
    /// at the quote; `token_start` includes a `b` prefix if present.
    fn scan_char_or_lifetime(&mut self, token_start: usize, quote: usize) -> usize {
        match self.peek(quote + 1) {
            // `'\…'` is always a char literal: lifetimes cannot start
            // with a backslash.
            Some(b'\\') => {
                self.flush_code(token_start);
                let mut i = quote + 1;
                while i < self.src.len() {
                    match self.src[i] {
                        b'\\' => i += 2,
                        b'\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                self.push(TokKind::Char, token_start, i.min(self.src.len()))
            }
            // `'X'` (one char, possibly multi-byte) is a char literal;
            // `'ident` / `'_` with no closing quote is a lifetime and
            // stays in code.
            Some(_) => {
                let rest = &self.text[quote + 1..];
                let mut chars = rest.char_indices();
                // The guard above proved there is at least one byte.
                let Some((_, c)) = chars.next() else {
                    return quote + 1;
                };
                let after = quote + 1 + c.len_utf8();
                if self.peek(after) == Some(b'\'') && c != '\'' {
                    self.flush_code(token_start);
                    self.push(TokKind::Char, token_start, after + 1)
                } else {
                    // Lifetime, label, or stray quote: plain code.
                    quote + 1
                }
            }
            None => quote + 1,
        }
    }

    fn scan_quote(&mut self, quote: usize) -> usize {
        self.scan_char_or_lifetime(quote, quote)
    }

    /// End offset of the identifier starting at `i`.
    fn ident_end(&self, i: usize) -> usize {
        let mut j = i + 1;
        while j < self.src.len() && is_ident_continue(self.src[j]) {
            j += 1;
        }
        j
    }

    /// Handles what follows a consumed identifier: literal-prefixed
    /// strings and byte chars, or plain code.
    fn after_ident(&mut self, start: usize, end: usize) -> usize {
        let name = &self.src[start..end];
        let next = self.peek(end);
        match (name, next) {
            // Raw strings: r"…", r#"…"#, br"…", cr#"…"# …
            (b"r" | b"br" | b"cr", Some(b'"' | b'#')) => {
                // Tentatively a raw string; `r#foo` (raw identifier)
                // falls through as code when no quote follows the
                // hashes.
                let save = self.code_start;
                self.flush_code(start);
                match self.scan_raw_string(start, end) {
                    Some(n) => n,
                    None => {
                        // Not a raw string after all (e.g. `r#ident`).
                        // Undo the flush by restoring the code span.
                        if self.tokens.last().is_some_and(|t| {
                            t.kind == TokKind::Code && t.start == save && t.end == start
                        }) {
                            self.tokens.pop();
                        }
                        self.code_start = save;
                        end
                    }
                }
            }
            // Byte / C strings: b"…", c"…".
            (b"b" | b"c", Some(b'"')) => {
                self.flush_code(start);
                self.scan_string_body(start, end)
            }
            // Byte char: b'x'.
            (b"b", Some(b'\'')) => self.scan_char_or_lifetime(start, end),
            _ => end,
        }
    }
}

/// A masked copy of `src` with the same byte length: bytes inside
/// comments and string/char literals are replaced by spaces (newlines
/// kept, so line numbers survive), code bytes kept verbatim. Rules scan
/// this, which is what guarantees "`unwrap` in a doc comment is not a
/// violation" by construction.
pub fn mask(src: &str, tokens: &[Token]) -> Vec<u8> {
    let mut out = src.as_bytes().to_vec();
    for t in tokens {
        if t.kind != TokKind::Code {
            for b in &mut out[t.start..t.end] {
                if *b != b'\n' {
                    *b = b' ';
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, &str)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, &src[t.start..t.end]))
            .collect()
    }

    fn tiles(src: &str) {
        let toks = lex(src);
        let mut at = 0;
        for t in &toks {
            assert_eq!(t.start, at, "gap before {t:?} in {src:?}");
            assert!(t.end > t.start, "empty token {t:?}");
            assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            at = t.end;
        }
        assert_eq!(at, src.len(), "tokens do not cover {src:?}");
    }

    #[test]
    fn plain_code_is_one_token() {
        assert_eq!(kinds("let x = 1;"), vec![(TokKind::Code, "let x = 1;")]);
    }

    #[test]
    fn line_comment_excludes_newline() {
        assert_eq!(
            kinds("a // c\nb"),
            vec![
                (TokKind::Code, "a "),
                (TokKind::LineComment, "// c"),
                (TokKind::Code, "\nb"),
            ]
        );
    }

    #[test]
    fn nested_block_comment() {
        let src = "x /* a /* b */ c */ y";
        assert_eq!(
            kinds(src),
            vec![
                (TokKind::Code, "x "),
                (TokKind::BlockComment, "/* a /* b */ c */"),
                (TokKind::Code, " y"),
            ]
        );
        tiles(src);
    }

    #[test]
    fn string_with_escapes() {
        let src = r#"let s = "a\"b\\";"#;
        assert_eq!(
            kinds(src),
            vec![
                (TokKind::Code, "let s = "),
                (TokKind::Str, r#""a\"b\\""#),
                (TokKind::Code, ";"),
            ]
        );
    }

    #[test]
    fn raw_string_with_guards_hides_unwrap() {
        let src = r###"let s = r#"x.unwrap() "quoted" inside"#;"###;
        let toks = kinds(src);
        assert_eq!(toks[1].0, TokKind::RawStr);
        assert!(toks[1].1.contains("unwrap"));
        assert_eq!(toks[2], (TokKind::Code, ";"));
        tiles(src);
    }

    #[test]
    fn raw_identifier_is_code() {
        let src = "let r#fn = 1;";
        assert_eq!(kinds(src), vec![(TokKind::Code, "let r#fn = 1;")]);
    }

    #[test]
    fn prefix_must_not_split_identifiers() {
        // `bridge` ends in nothing special; `carb"x"` is `carb` then a
        // plain string (invalid Rust, but must still tile).
        tiles("let bridge = 1;");
        assert_eq!(
            kinds("let bridge = 1;"),
            vec![(TokKind::Code, "let bridge = 1;")]
        );
        tiles(r#"carb"x""#);
    }

    #[test]
    fn char_vs_lifetime() {
        let src =
            "fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; 'outer: loop { break 'outer; } }";
        let toks = kinds(src);
        let chars: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Char)
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(chars, vec!["'x'", "'\\n'"]);
        tiles(src);
    }

    #[test]
    fn unicode_char_literal() {
        let src = "let c = '\u{1F600}'; let l = '\u{3B1}';";
        // Both are char literals ('α' too).
        let toks = kinds(src);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Char).count(),
            2,
            "{toks:?}"
        );
        tiles(src);
    }

    #[test]
    fn byte_literals() {
        let src = r##"let a = b"bytes"; let c = b'x'; let r = br#"raw"#;"##;
        let toks = kinds(src);
        assert_eq!(toks[1].0, TokKind::Str);
        assert!(toks
            .iter()
            .any(|(k, s)| *k == TokKind::Char && *s == "b'x'"));
        assert!(toks.iter().any(|(k, _)| *k == TokKind::RawStr));
        tiles(src);
    }

    #[test]
    fn unterminated_forms_extend_to_eof() {
        for src in [
            "/* never closed",
            "\"never closed",
            "r#\"never closed",
            "// eof",
        ] {
            tiles(src);
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?} -> {toks:?}");
        }
    }

    #[test]
    fn comment_markers_inside_strings_stay_strings() {
        let src = r#"let s = "// not a comment /* nor this */";"#;
        let toks = kinds(src);
        assert_eq!(toks.len(), 3);
        assert_eq!(toks[1].0, TokKind::Str);
    }

    #[test]
    fn mask_preserves_length_and_newlines() {
        let src = "a\n\"s\ntr\"\n// c\nb";
        let toks = lex(src);
        let m = mask(src, &toks);
        assert_eq!(m.len(), src.len());
        let nl = |bs: &[u8]| bs.iter().filter(|&&b| b == b'\n').count();
        assert_eq!(nl(&m), nl(src.as_bytes()));
        assert!(!String::from_utf8_lossy(&m).contains("tr"));
    }
}
