//! Report assembly: the machine-readable `LINT.json` document and the
//! human-readable violation table.

use crate::rules::{AllowEntry, RuleInfo, Violation, RULES};
use serde::Serialize;

/// The complete result of one workspace scan — serialized verbatim as
/// `LINT.json` so CI can gate on `counts.violations == 0` and audit the
/// allow ledger without re-parsing the table.
#[derive(Debug, Serialize)]
pub struct Report {
    /// Report producer, for provenance.
    pub tool: String,
    /// Format version; bump on breaking shape changes.
    pub version: u32,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// The rule catalog in force during the scan.
    pub rules: Vec<RuleInfo>,
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub violations: Vec<Violation>,
    /// Every `lint:allow` that suppressed something, with its reason —
    /// the audit ledger for "allowed with reason".
    pub allowed: Vec<AllowEntry>,
    /// Roll-up counts (duplicated for cheap gating).
    pub counts: Counts,
    /// The semantic pass roll-up: call-graph size, layer table,
    /// lock-order edges, panic/RNG accounting. Counts here are **raw**
    /// (pre-suppression), so CI can gate structural invariants (zero
    /// layer violations, zero lock cycles, complete RNG provenance)
    /// independently of the allow ledger.
    pub graph: GraphSection,
}

/// The `graph` section of `LINT.json`.
#[derive(Debug, Default, Serialize)]
pub struct GraphSection {
    /// Files whose item trees were parsed.
    pub files_parsed: usize,
    /// Call-graph fn nodes.
    pub fns: usize,
    /// Nodes on the pub API surface.
    pub pub_fns: usize,
    /// Call edges (all confidences).
    pub edges: usize,
    /// Path-resolved edges.
    pub edges_high: usize,
    /// Name-heuristic edges.
    pub edges_low: usize,
    /// Calls matching no workspace fn (std / vendored callees).
    pub unresolved_calls: usize,
    /// The declarative crate layer table in force.
    pub layers: Vec<LayerEntry>,
    /// Raw (pre-suppression) upward layer references.
    pub layer_violations: usize,
    /// Acquired-while-held lock order edges.
    pub lock_edges: Vec<LockEdge>,
    /// Cycle-closing lock edges (potential deadlocks), raw.
    pub lock_cycles: usize,
    /// assert!-family sites in protected library code.
    pub panic_sources: usize,
    /// Of those: documented `# Panics`, reasoned allow, compile-time,
    /// or off the pub API surface.
    pub panic_accounted: usize,
    /// RNG construction sites (incl. `rand::random`).
    pub rng_constructions: usize,
    /// Of those: traced to a named seed/stream source.
    pub rng_traced: usize,
}

/// One crate layer assignment.
#[derive(Debug, Serialize)]
pub struct LayerEntry {
    /// Crate path token (`alert_core`, …).
    pub name: String,
    /// Layer number (references must point strictly downward).
    pub layer: u32,
}

/// One acquired-while-held edge.
#[derive(Debug, Serialize)]
pub struct LockEdge {
    /// Lock held at the time (`path::name`).
    pub from: String,
    /// Lock acquired while holding `from`.
    pub to: String,
    /// File where the inner acquisition happens.
    pub file: String,
}

/// Roll-up totals.
#[derive(Debug, Serialize)]
pub struct Counts {
    /// `violations.len()`.
    pub violations: usize,
    /// `allowed.len()` — number of annotations, not suppressed sites.
    pub allowed: usize,
    /// Total findings the ledger suppressed.
    pub suppressed_sites: usize,
}

impl Report {
    /// Assembles a report from per-file findings (already merged).
    pub fn new(
        files_scanned: usize,
        mut violations: Vec<Violation>,
        mut allowed: Vec<AllowEntry>,
        graph: GraphSection,
    ) -> Report {
        violations.sort_by(|a, b| {
            (a.file.as_str(), a.line, a.rule.as_str()).cmp(&(
                b.file.as_str(),
                b.line,
                b.rule.as_str(),
            ))
        });
        allowed.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
        let suppressed_sites = allowed.iter().map(|a| a.suppressed).sum();
        Report {
            tool: "alert-lint".to_string(),
            version: 1,
            files_scanned,
            rules: RULES.to_vec(),
            counts: Counts {
                violations: violations.len(),
                allowed: allowed.len(),
                suppressed_sites,
            },
            violations,
            allowed,
            graph,
        }
    }

    /// Whether the scan is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Pretty JSON for `LINT.json`.
    pub fn to_json(&self) -> String {
        // The shim's pretty printer is deterministic (BTreeMap objects).
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }

    /// The human table: one row per violation, then the ledger, then a
    /// one-line summary.
    pub fn human_table(&self) -> String {
        let mut out = String::new();
        if !self.violations.is_empty() {
            let loc_w = self
                .violations
                .iter()
                .map(|v| v.file.len() + digits(v.line) + 1)
                .max()
                .unwrap_or(0);
            let rule_w = self
                .violations
                .iter()
                .map(|v| v.rule.len())
                .max()
                .unwrap_or(0);
            for v in &self.violations {
                let loc = format!("{}:{}", v.file, v.line);
                out.push_str(&format!(
                    "{loc:<loc_w$}  {rule:<rule_w$}  {snippet}\n",
                    rule = v.rule,
                    snippet = truncate(&v.snippet, 60),
                ));
                out.push_str(&format!("{:loc_w$}  {:rule_w$}  ^ {}\n", "", "", v.message));
            }
            out.push('\n');
        }
        if !self.allowed.is_empty() {
            out.push_str("allowed with reason:\n");
            for a in &self.allowed {
                out.push_str(&format!(
                    "  {}:{} [{}] x{} — {}\n",
                    a.file,
                    a.line,
                    a.rules.join(","),
                    a.suppressed,
                    a.reason
                ));
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "call graph: {} fn(s), {} edge(s) ({} path-resolved, {} heuristic), \
             {} external call(s)\n",
            self.graph.fns,
            self.graph.edges,
            self.graph.edges_high,
            self.graph.edges_low,
            self.graph.unresolved_calls,
        ));
        out.push_str(&format!(
            "semantic: {} layer violation(s), {} lock edge(s) ({} cycle(s)), \
             {}/{} panic source(s) accounted, {}/{} RNG construction(s) traced\n",
            self.graph.layer_violations,
            self.graph.lock_edges.len(),
            self.graph.lock_cycles,
            self.graph.panic_accounted,
            self.graph.panic_sources,
            self.graph.rng_traced,
            self.graph.rng_constructions,
        ));
        out.push_str(&format!(
            "{} file(s) scanned: {} violation(s), {} allow annotation(s) covering {} site(s)\n",
            self.files_scanned,
            self.counts.violations,
            self.counts.allowed,
            self.counts.suppressed_sites,
        ));
        out
    }
}

fn digits(mut n: usize) -> usize {
    let mut d = 1;
    while n >= 10 {
        n /= 10;
        d += 1;
    }
    d
}

fn truncate(s: &str, max: usize) -> String {
    if s.chars().count() <= max {
        s.to_string()
    } else {
        let cut: String = s.chars().take(max - 1).collect();
        format!("{cut}…")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(file: &str, line: usize, rule: &str) -> Violation {
        Violation {
            rule: rule.to_string(),
            file: file.to_string(),
            line,
            snippet: "x.unwrap()".to_string(),
            message: "msg".to_string(),
        }
    }

    #[test]
    fn report_sorts_and_counts() {
        let r = Report::new(
            3,
            vec![v("b.rs", 2, "no-panic"), v("a.rs", 9, "no-wall-clock")],
            vec![AllowEntry {
                rules: vec!["no-panic".to_string()],
                file: "c.rs".to_string(),
                line: 1,
                reason: "why".to_string(),
                suppressed: 2,
            }],
            GraphSection::default(),
        );
        assert_eq!(r.violations[0].file, "a.rs");
        assert_eq!(r.counts.violations, 2);
        assert_eq!(r.counts.suppressed_sites, 2);
        assert!(!r.is_clean());
        let table = r.human_table();
        assert!(table.contains("a.rs:9"));
        assert!(table.contains("allowed with reason"));
    }

    #[test]
    fn json_round_trips_shape() {
        let r = Report::new(1, vec![], vec![], GraphSection::default());
        let json = r.to_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid json");
        let serde_json::Value::Object(o) = doc else {
            panic!("not an object")
        };
        for key in [
            "tool",
            "version",
            "violations",
            "allowed",
            "counts",
            "rules",
            "graph",
        ] {
            assert!(o.contains_key(key), "missing {key}");
        }
    }
}
