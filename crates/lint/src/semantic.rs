//! The workspace-level semantic pass: the four graph-powered rules.
//!
//! Unlike the lexical rules in [`crate::rules`], these need every file
//! at once — a panic site matters because of who can *reach* it, a
//! `use` matters because of which *layer* it crosses, a lock matters
//! because of what is acquired *while it is held*. The pass runs once
//! over all scanned files, builds the approximate call graph
//! ([`crate::graph`]), and emits raw violations that flow through the
//! same per-file suppression resolution as the lexical rules, so
//! `lint:allow(panic-reachability)` etc. work exactly like every other
//! allow.
//!
//! Soundness posture (DESIGN.md §10): the analyses *flag possible*
//! problems, they do not prove absence. Resolution is approximate, lock
//! spans are syntactic, and taint only follows edges the graph is
//! confident about — so a clean report means "nothing visibly wrong",
//! and a violation means "explain this or fix it".

use crate::context::{FileContext, FileKind};
use crate::graph::{crate_token, CallGraph, GraphInput};
use crate::items::Item;
use crate::report::{GraphSection, LayerEntry, LockEdge};
use crate::rules::{
    RawViolation, CRATE_LAYER_DAG, LOCK_ORDER, NO_PANIC, PANIC_REACHABILITY, RNG_PROVENANCE,
};
use std::collections::{BTreeMap, BTreeSet};

/// One scanned file as the semantic pass consumes it.
pub struct SemanticInput<'a> {
    /// File context (path, crate, kind, test spans).
    pub ctx: &'a FileContext,
    /// Original source (for doc-comment inspection).
    pub src: &'a str,
    /// Masked source bytes.
    pub masked: &'a [u8],
    /// Parsed item tree.
    pub items: &'a [Item],
    /// Allow annotations already parsed by the lexical pass:
    /// (covered line, rule ids named). Used so a reasoned
    /// `lint:allow(no-panic)` also *accounts* the site for the
    /// reachability taint instead of being a blind spot.
    pub allows: Vec<(Option<usize>, Vec<String>)>,
}

/// The semantic pass result.
pub struct Semantics {
    /// Raw violations per input file (parallel to the input slice).
    pub(crate) violations: Vec<Vec<RawViolation>>,
    /// The `graph` section for `LINT.json`.
    pub graph: GraphSection,
}

/// The crate layer table: a crate may reference only strictly lower
/// layers. `bench` and `lint` share the top layer (neither may be
/// referenced by library code, and they must not reference each other).
/// The root `alert` package re-exports everything and is exempt.
const LAYERS: &[(&str, u32)] = &[
    ("alert_stats", 0),
    ("alert_platform", 1),
    ("alert_models", 2),
    ("alert_workload", 3),
    ("alert_core", 4),
    ("alert_sched", 5),
    ("alert_bench", 6),
    ("alert_lint", 6),
];

/// Crates whose pub API must not reach undocumented panic sites.
const PROTECTED: &[&str] = &[
    "alert_stats",
    "alert_platform",
    "alert_models",
    "alert_workload",
    "alert_core",
    "alert_sched",
];

/// Functions sanctioned to construct RNGs: the named stream roots every
/// other construction must trace to. (file path, fn name).
const RNG_ROOTS: &[(&str, &str)] = &[
    ("crates/stats/src/rng.rs", "stream_rng"),
    ("crates/workload/src/task.rs", "task_rng"),
];

/// Runs the whole semantic pass.
pub fn analyze(files: &[SemanticInput<'_>]) -> Semantics {
    let inputs: Vec<GraphInput<'_>> = files
        .iter()
        .map(|f| GraphInput {
            ctx: f.ctx,
            masked: f.masked,
            items: f.items,
        })
        .collect();
    let graph = CallGraph::build(&inputs);
    let stats = graph.stats(files.len());

    let mut violations: Vec<Vec<RawViolation>> = files.iter().map(|_| Vec::new()).collect();
    let mut section = GraphSection {
        files_parsed: stats.files_parsed,
        fns: stats.fns,
        pub_fns: stats.pub_fns,
        edges: stats.edges,
        edges_high: stats.edges_high,
        edges_low: stats.edges_low,
        unresolved_calls: stats.unresolved_calls,
        layers: LAYERS
            .iter()
            .map(|&(name, layer)| LayerEntry {
                name: name.to_string(),
                layer,
            })
            .collect(),
        ..GraphSection::default()
    };

    layer_pass(files, &mut violations, &mut section);
    panic_pass(files, &graph, &mut violations, &mut section);
    lock_pass(files, &graph, &mut violations, &mut section);
    rng_pass(files, &graph, &mut violations, &mut section);

    Semantics {
        violations,
        graph: section,
    }
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// 1-based line of a byte offset.
fn line_of(bytes: &[u8], offset: usize) -> usize {
    bytes.iter().take(offset).filter(|&&b| b == b'\n').count() + 1
}

/// Iterates word occurrences in masked bytes as (start, end) spans.
struct Words<'a> {
    bytes: &'a [u8],
    i: usize,
}

impl<'a> Words<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Words { bytes, i: 0 }
    }
}

impl Iterator for Words<'_> {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        while self.i < self.bytes.len() {
            let at_boundary = self.i == 0 || !is_word(self.bytes[self.i - 1]);
            if is_word(self.bytes[self.i]) && at_boundary && !self.bytes[self.i].is_ascii_digit() {
                let start = self.i;
                while self.i < self.bytes.len() && is_word(self.bytes[self.i]) {
                    self.i += 1;
                }
                return Some((start, self.i));
            }
            self.i += 1;
        }
        None
    }
}

/// Next non-whitespace byte at or after `i`.
fn next_nonws(bytes: &[u8], mut i: usize) -> Option<(usize, u8)> {
    while i < bytes.len() {
        if !bytes[i].is_ascii_whitespace() {
            return Some((i, bytes[i]));
        }
        i += 1;
    }
    None
}

/// Previous non-whitespace byte strictly before `i`.
fn prev_nonws(bytes: &[u8], i: usize) -> Option<(usize, u8)> {
    (0..i)
        .rev()
        .map(|j| (j, bytes[j]))
        .find(|&(_, b)| !b.is_ascii_whitespace())
}

// ------------------------------------------------------- crate-layer-dag

/// Flags any `alert_X::` reference whose target layer is not strictly
/// below the referencing crate's layer. Catches `use`-level leaks that
/// Cargo.toml inspection cannot see (a dependency edge that exists but
/// should not be exercised, or a `pub use` that smuggles an upper-layer
/// type downward).
fn layer_pass(
    files: &[SemanticInput<'_>],
    violations: &mut [Vec<RawViolation>],
    section: &mut GraphSection,
) {
    let table: BTreeMap<&str, u32> = LAYERS.iter().copied().collect();
    for (fi, f) in files.iter().enumerate() {
        // Tests and examples may depend on anything (dev-deps); the
        // root `alert` package re-exports the whole stack.
        if matches!(f.ctx.kind, FileKind::IntegrationTest | FileKind::Example) {
            continue;
        }
        let own = crate_token(f.ctx);
        let Some(&own_layer) = table.get(own.as_str()) else {
            continue; // root `alert` crate
        };
        for (s, e) in Words::new(f.masked) {
            if f.ctx.in_test(s) {
                continue;
            }
            let word = String::from_utf8_lossy(&f.masked[s..e]);
            let Some(&target_layer) = table.get(word.as_ref()) else {
                continue;
            };
            // Only path references (`alert_x::…`) count; a bare mention
            // (e.g. a fn named alert_core_something is impossible — the
            // word match is exact — but `extern crate` style) is rare
            // enough to ignore.
            let followed_by_path = next_nonws(f.masked, e)
                .map(|(i, b)| b == b':' && f.masked.get(i + 1) == Some(&b':'))
                .unwrap_or(false);
            if !followed_by_path || word == own {
                continue;
            }
            if target_layer >= own_layer {
                section.layer_violations += 1;
                if let Some(v) = violations.get_mut(fi) {
                    v.push(RawViolation {
                        rule: CRATE_LAYER_DAG,
                        offset: s,
                        message: format!(
                            "{own} (layer {own_layer}) references {word} (layer \
                             {target_layer}); the crate DAG is stats < platform < \
                             models < workload < core < sched < bench/lint and \
                             references must point strictly downward"
                        ),
                    });
                }
            }
        }
    }
}

// --------------------------------------------------- panic-reachability

/// Flags `assert!`/`assert_eq!`/`assert_ne!` sites in protected library
/// code that are reachable from the crate's pub API and not accounted
/// for — where "accounted" means the enclosing fn documents `# Panics`,
/// or the line carries a reasoned `lint:allow(no-panic)` /
/// `lint:allow(panic-reachability)`.
///
/// `unwrap`/`expect`/`panic!`/literal indexing are *not* re-reported
/// here: the lexical `no-panic` rule already forces each of those sites
/// to carry a reasoned allow, which this pass treats as a taint sink.
/// The assert family is the gap the lexical pass deliberately left
/// (asserts state intended invariants), and reachability from pub API
/// is exactly when that intent must be written down.
fn panic_pass(
    files: &[SemanticInput<'_>],
    graph: &CallGraph,
    violations: &mut [Vec<RawViolation>],
    section: &mut GraphSection,
) {
    // Cache: node id -> pub entry points reaching it (empty = internal).
    let mut entry_cache: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    for (fi, f) in files.iter().enumerate() {
        let token = crate_token(f.ctx);
        if !PROTECTED.contains(&token.as_str()) || f.ctx.kind != FileKind::Library {
            continue;
        }
        for (s, e) in Words::new(f.masked) {
            if !matches!(&f.masked[s..e], b"assert" | b"assert_eq" | b"assert_ne") {
                continue;
            }
            if next_nonws(f.masked, e).map(|(_, b)| b) != Some(b'!') || f.ctx.in_test(s) {
                continue;
            }
            section.panic_sources += 1;
            let line = line_of(f.masked, s);
            let allowed = f.allows.iter().any(|(target, rules)| {
                *target == Some(line)
                    && rules
                        .iter()
                        .any(|r| r == NO_PANIC || r == PANIC_REACHABILITY)
            });
            if allowed {
                section.panic_accounted += 1;
                continue;
            }
            let Some(node) = graph.enclosing_fn(fi, s) else {
                // Module-level (`const _: () = assert!(…)`) is a
                // compile-time check, not a runtime panic path.
                section.panic_accounted += 1;
                continue;
            };
            let span_start = graph.nodes.get(node).map(|n| n.span.0).unwrap_or(0);
            if doc_has_panics(f.src, span_start) {
                section.panic_accounted += 1;
                continue;
            }
            let entries = entry_cache
                .entry(node)
                .or_insert_with(|| pub_entries(graph, node));
            if entries.is_empty() {
                // Not on the pub surface: internal invariant, the
                // lexical posture (asserts allowed) stands.
                section.panic_accounted += 1;
                continue;
            }
            let list = entries.join(", ");
            if let Some(v) = violations.get_mut(fi) {
                v.push(RawViolation {
                    rule: PANIC_REACHABILITY,
                    offset: s,
                    message: format!(
                        "assert! here panics and is reachable from pub API ({list}); \
                         add a `# Panics` doc section to the enclosing fn, return an \
                         error, or annotate the invariant"
                    ),
                });
            }
        }
    }
}

/// Pub entry points that can reach `node` (including itself), as
/// display paths, capped at 3 for readable messages.
fn pub_entries(graph: &CallGraph, node: usize) -> Vec<String> {
    let mut entries = Vec::new();
    let is_pub = |id: usize| graph.nodes.get(id).is_some_and(|n| n.pub_api);
    if is_pub(node) {
        if let Some(n) = graph.nodes.get(node) {
            entries.push(n.display_path());
        }
    }
    let mut reaching: Vec<usize> = graph
        .reaching(node)
        .into_iter()
        .filter(|&id| is_pub(id))
        .collect();
    reaching.sort_unstable();
    for id in reaching {
        if entries.len() >= 3 {
            break;
        }
        if let Some(n) = graph.nodes.get(id) {
            let p = n.display_path();
            if !entries.contains(&p) {
                entries.push(p);
            }
        }
    }
    entries
}

/// Does the doc comment immediately above the item starting at
/// `span_start` contain a `# Panics` section? Walks backwards over
/// contiguous doc-comment and attribute lines.
fn doc_has_panics(src: &str, span_start: usize) -> bool {
    let head = src.get(..span_start).unwrap_or("");
    for line in head.lines().rev() {
        let t = line.trim();
        if t.is_empty() {
            // The partial indent line directly before the item.
            continue;
        }
        if t.starts_with("///") || t.starts_with("//!") {
            if t.contains("# Panics") {
                return true;
            }
        } else if !(t.starts_with("#[") || t.starts_with("#![") || t.starts_with("//")) {
            return false;
        }
    }
    false
}

// ------------------------------------------------------------ lock-order

/// One lock identity: (file index, receiver base name).
type LockId = (usize, String);

struct Acquisition {
    file: usize,
    offset: usize,
    lock: LockId,
    /// Byte offset where the guard is certainly dead.
    held_until: usize,
    /// Enclosing fn node, if any.
    node: Option<usize>,
}

/// Builds the acquired-while-held digraph over lock identities and
/// flags any cycle as a potential deadlock. Per fn: an acquisition of B
/// textually inside A's held span adds A→B; a call inside A's held span
/// to a fn whose transitive lock set contains B also adds A→B
/// (propagated over confident call edges). Identities are per-file
/// receiver names — see DESIGN.md §10 for why this flags-possible
/// rather than proves-impossible.
fn lock_pass(
    files: &[SemanticInput<'_>],
    graph: &CallGraph,
    violations: &mut [Vec<RawViolation>],
    section: &mut GraphSection,
) {
    let mut acqs: Vec<Acquisition> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        if f.ctx.kind != FileKind::Library {
            continue;
        }
        let declared = declared_locks(f.masked);
        for (s, e) in Words::new(f.masked) {
            let word = &f.masked[s..e];
            let is_lock = word == b"lock";
            let is_rw = matches!(word, b"read" | b"write");
            if !(is_lock || is_rw) || f.ctx.in_test(s) {
                continue;
            }
            // Must be `.name()` — a method call with no arguments.
            if prev_nonws(f.masked, s).map(|(_, b)| b) != Some(b'.') {
                continue;
            }
            let Some((open, b'(')) = next_nonws(f.masked, e) else {
                continue;
            };
            if next_nonws(f.masked, open + 1).map(|(_, b)| b) != Some(b')') {
                continue;
            }
            let Some(recv) = receiver_base(f.masked, s) else {
                continue;
            };
            // `.read()`/`.write()` only count on receivers that are
            // declared locks in this file (io::Read etc. otherwise).
            if is_rw && !declared.contains(&recv) {
                continue;
            }
            acqs.push(Acquisition {
                file: fi,
                offset: s,
                lock: (fi, recv),
                held_until: held_until(f.masked, s),
                node: graph.enclosing_fn(fi, s),
            });
        }
    }

    // Direct lock sets per fn node, then transitive over confident
    // call edges (fixpoint; the graph is small).
    let mut locks_of: BTreeMap<usize, BTreeSet<LockId>> = BTreeMap::new();
    for a in &acqs {
        if let Some(n) = a.node {
            locks_of.entry(n).or_default().insert(a.lock.clone());
        }
    }
    loop {
        let mut changed = false;
        for id in 0..graph.nodes.len() {
            let mut gained: BTreeSet<LockId> = BTreeSet::new();
            for &c in graph.callees(id) {
                if let Some(ls) = locks_of.get(&c) {
                    gained.extend(ls.iter().cloned());
                }
            }
            if gained.is_empty() {
                continue;
            }
            let entry = locks_of.entry(id).or_default();
            let before = entry.len();
            entry.extend(gained);
            if entry.len() != before {
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Order edges: (from, to) -> first site (file, offset).
    let mut order: BTreeMap<(LockId, LockId), (usize, usize)> = BTreeMap::new();
    for a in &acqs {
        let span = a.offset..a.held_until;
        // Other textual acquisitions inside the held span.
        for b in &acqs {
            if b.file == a.file
                && b.offset != a.offset
                && span.contains(&b.offset)
                && b.lock != a.lock
            {
                order
                    .entry((a.lock.clone(), b.lock.clone()))
                    .or_insert((b.file, b.offset));
            }
        }
        // Calls inside the held span whose callees (transitively) lock.
        let Some(n) = a.node else { continue };
        for e in &graph.edges {
            if e.from != n || !e.propagates() || !span.contains(&e.offset) {
                continue;
            }
            if let Some(ls) = locks_of.get(&e.to) {
                for l in ls {
                    if *l != a.lock {
                        order
                            .entry((a.lock.clone(), l.clone()))
                            .or_insert((a.file, e.offset));
                    }
                }
            }
        }
    }

    // Report the edge list and flag cycle-closing edges.
    let mut adj: BTreeMap<&LockId, Vec<&LockId>> = BTreeMap::new();
    for (from, to) in order.keys() {
        adj.entry(from).or_default().push(to);
    }
    let lock_name = |l: &LockId| {
        let file = files.get(l.0).map(|f| f.ctx.path.as_str()).unwrap_or("?");
        format!("{file}::{}", l.1)
    };
    for ((from, to), &(vfile, voffset)) in &order {
        section.lock_edges.push(LockEdge {
            from: lock_name(from),
            to: lock_name(to),
            file: files
                .get(vfile)
                .map(|f| f.ctx.path.clone())
                .unwrap_or_default(),
        });
        // Self-loops never land in `order` (guarded above), so a cycle
        // through this edge exists iff `from` is reachable from `to`.
        if reaches(&adj, to, from) {
            section.lock_cycles += 1;
            if let Some(v) = violations.get_mut(vfile) {
                v.push(RawViolation {
                    rule: LOCK_ORDER,
                    offset: voffset,
                    message: format!(
                        "acquiring {} while holding {} closes a lock-order cycle \
                         (potential deadlock); acquire locks in one global order",
                        lock_name(to),
                        lock_name(from),
                    ),
                });
            }
        }
    }
}

/// BFS over the lock digraph: can `from` reach `target`?
fn reaches(adj: &BTreeMap<&LockId, Vec<&LockId>>, from: &LockId, target: &LockId) -> bool {
    let mut seen: BTreeSet<&LockId> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(l) = stack.pop() {
        if l == target {
            return true;
        }
        if !seen.insert(l) {
            continue;
        }
        if let Some(next) = adj.get(l) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Receiver base names of `Mutex<`/`RwLock<`/`Mutex::new`/`RwLock::new`
/// declarations in this file: the identifier bound (`let name = …`) or
/// the field name (`name: Arc<Mutex<…>>`).
fn declared_locks(masked: &[u8]) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for (s, e) in Words::new(masked) {
        if !matches!(&masked[s..e], b"Mutex" | b"RwLock") {
            continue;
        }
        let after = next_nonws(masked, e).map(|(_, b)| b);
        let generic = after == Some(b'<');
        let ctor = after == Some(b':'); // `Mutex::new(…)`
        if !(generic || ctor) {
            continue;
        }
        if let Some(name) = binding_name(masked, s) {
            out.insert(name);
        }
    }
    out
}

/// Walks back from a type/ctor occurrence to the identifier it is bound
/// to: through type syntax (`Arc<`, `::`, parens, words) to a single
/// `:` (field or let type annotation) or `=` (plain `let name = …`),
/// then reads the identifier before it.
fn binding_name(masked: &[u8], mut i: usize) -> Option<String> {
    loop {
        let (j, b) = prev_nonws(masked, i)?;
        match b {
            b':' => {
                if j > 0 && masked[j - 1] == b':' {
                    // `::` path separator — keep walking.
                    i = j - 1;
                    continue;
                }
                return ident_ending_before(masked, j);
            }
            b'=' => {
                // `let name = Mutex::new(…)` / `name = …` (assignment).
                let name = ident_ending_before(masked, j)?;
                return if name == "let" { None } else { Some(name) };
            }
            b'>' | b'<' | b'(' | b',' => {
                i = j;
            }
            _ if is_word(b) => {
                i = j;
                // Skip the whole word.
                while i > 0 && is_word(masked[i - 1]) {
                    i -= 1;
                }
            }
            _ => return None,
        }
        if i == 0 {
            return None;
        }
    }
}

/// The identifier whose last byte is the last word byte before `i`
/// (skipping whitespace), also skipping a `mut` qualifier.
fn ident_ending_before(masked: &[u8], i: usize) -> Option<String> {
    let (end, b) = prev_nonws(masked, i)?;
    if !is_word(b) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_word(masked[start - 1]) {
        start -= 1;
    }
    let word = String::from_utf8_lossy(&masked[start..=end]).into_owned();
    if word == "mut" {
        return ident_ending_before(masked, start);
    }
    Some(word)
}

/// The receiver chain of a `.method(` at `dot_word_start`, reduced to
/// its base name: `self.inner.lock()` → `inner`, `results.lock()` →
/// `results`, `guard().lock()` → None (computed receiver).
fn receiver_base(masked: &[u8], method_start: usize) -> Option<String> {
    let (dot, b'.') = prev_nonws(masked, method_start)? else {
        return None;
    };
    let (end, b) = prev_nonws(masked, dot)?;
    if !is_word(b) {
        return None;
    }
    let mut start = end;
    while start > 0 && is_word(masked[start - 1]) {
        start -= 1;
    }
    let name = String::from_utf8_lossy(&masked[start..=end]).into_owned();
    if name == "self" {
        // Bare `self.lock()` — no field; unusual, skip.
        return None;
    }
    Some(name)
}

/// How long the guard returned by the acquisition at `offset` is held:
/// a `let`-bound guard lives to the end of the enclosing block (or an
/// explicit `drop(name)`); a temporary dies at its statement's `;`.
fn held_until(masked: &[u8], offset: usize) -> usize {
    let stmt_start = statement_start(masked, offset);
    let guard = let_guard_name(masked, stmt_start);
    let mut depth = 0i32;
    let mut i = offset;
    while i < masked.len() {
        match masked[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth < 0 {
                    return i; // enclosing block closes
                }
            }
            b';' if depth == 0 && guard.is_none() => return i,
            b'd' if guard.is_some() && is_drop_of(masked, i, guard.as_deref()) => {
                return i;
            }
            _ => {}
        }
        i += 1;
    }
    masked.len()
}

/// Start offset of the statement containing `offset`: just past the
/// previous `;`, `{`, or `}`.
fn statement_start(masked: &[u8], offset: usize) -> usize {
    (0..offset)
        .rev()
        .find(|&j| matches!(masked[j], b';' | b'{' | b'}'))
        .map(|j| j + 1)
        .unwrap_or(0)
}

/// If the statement starting at `stmt` is `let [mut] name …`, the bound
/// name. A `let _ = …` binding drops immediately and returns None.
fn let_guard_name(masked: &[u8], stmt: usize) -> Option<String> {
    let (s, _) = next_nonws(masked, stmt)?;
    let mut e = s;
    while e < masked.len() && is_word(masked[e]) {
        e += 1;
    }
    if &masked[s..e] != b"let" {
        return None;
    }
    let (s2, _) = next_nonws(masked, e)?;
    let mut e2 = s2;
    while e2 < masked.len() && is_word(masked[e2]) {
        e2 += 1;
    }
    let mut word = String::from_utf8_lossy(&masked[s2..e2]).into_owned();
    if word == "mut" {
        let (s3, _) = next_nonws(masked, e2)?;
        let mut e3 = s3;
        while e3 < masked.len() && is_word(masked[e3]) {
            e3 += 1;
        }
        word = String::from_utf8_lossy(&masked[s3..e3]).into_owned();
    }
    if word == "_" || word.is_empty() {
        None
    } else {
        Some(word)
    }
}

/// Is `drop ( name )` spelled at `i` (word-aligned)?
fn is_drop_of(masked: &[u8], i: usize, guard: Option<&str>) -> bool {
    let Some(name) = guard else { return false };
    if i > 0 && is_word(masked[i - 1]) {
        return false;
    }
    if masked.get(i..i + 4) != Some(b"drop") {
        return false;
    }
    let Some((open, b'(')) = next_nonws(masked, i + 4) else {
        return false;
    };
    let Some((s, _)) = next_nonws(masked, open + 1) else {
        return false;
    };
    let mut e = s;
    while e < masked.len() && is_word(masked[e]) {
        e += 1;
    }
    &*String::from_utf8_lossy(&masked[s..e]) == name
}

// -------------------------------------------------------- rng-provenance

/// Every RNG construction (`seed_from_u64` / `from_seed` / `from_rng`)
/// must trace to a named seed source: happen inside a sanctioned root
/// (`stream_rng`, `task_rng`), or take a seed-named value / integer
/// literal / SCREAMING constant / `derive_seed(…)` call. A construction
/// whose argument consumes another RNG's output (`.gen…`, `next_u…`,
/// `random`) is a violation everywhere — RNG-from-RNG couples streams
/// and breaks replay identity. `rand::random` is always a violation
/// (thread-local entropy in disguise). Applies to tests and benches
/// too: frozen randomness is global policy, matching `no-unseeded-rng`.
fn rng_pass(
    files: &[SemanticInput<'_>],
    graph: &CallGraph,
    violations: &mut [Vec<RawViolation>],
    section: &mut GraphSection,
) {
    const FORBIDDEN: &[&str] = &[
        "gen",
        "gen_range",
        "gen_bool",
        "next_u32",
        "next_u64",
        "random",
    ];
    for (fi, f) in files.iter().enumerate() {
        for (s, e) in Words::new(f.masked) {
            let word = &f.masked[s..e];
            // `rand::random` — path-qualified ambient entropy.
            if word == b"random"
                && path_head_is(f.masked, s, b"rand")
                && next_nonws(f.masked, e).map(|(_, b)| b) == Some(b'(')
            {
                section.rng_constructions += 1;
                if let Some(v) = violations.get_mut(fi) {
                    v.push(RawViolation {
                        rule: RNG_PROVENANCE,
                        offset: s,
                        message: "rand::random draws thread-local entropy; derive the \
                                  value from a named stream (stream_rng/task_rng)"
                            .to_string(),
                    });
                }
                continue;
            }
            if !matches!(word, b"seed_from_u64" | b"from_seed" | b"from_rng") {
                continue;
            }
            let Some((open, b'(')) = next_nonws(f.masked, e) else {
                continue;
            };
            section.rng_constructions += 1;
            // Inside a sanctioned root fn?
            let in_root = RNG_ROOTS.iter().any(|&(path, fn_name)| {
                f.ctx.path == path
                    && graph
                        .enclosing_fn(fi, s)
                        .and_then(|id| graph.nodes.get(id))
                        .is_some_and(|n| n.name == fn_name)
            });
            if in_root {
                section.rng_traced += 1;
                continue;
            }
            let arg = arg_span(f.masked, open);
            let arg_words: Vec<String> = Words::new(arg)
                .map(|(ws, we)| String::from_utf8_lossy(&arg[ws..we]).into_owned())
                .collect();
            let fed_by_rng = arg_words.iter().any(|w| FORBIDDEN.contains(&w.as_str()))
                || matches!(word, b"from_rng");
            if fed_by_rng {
                if let Some(v) = violations.get_mut(fi) {
                    v.push(RawViolation {
                        rule: RNG_PROVENANCE,
                        offset: s,
                        message: "RNG constructed from another RNG's output couples \
                                  streams and breaks replay identity; derive the seed \
                                  with derive_seed(seed, label) instead"
                            .to_string(),
                    });
                }
                continue;
            }
            // A literal seed: any standalone integer in the argument
            // (digit-leading tokens are not identifiers in Rust, so a
            // digit at a word boundary is a numeric literal).
            let literal_seed = arg
                .iter()
                .enumerate()
                .any(|(i, b)| b.is_ascii_digit() && (i == 0 || !is_word(arg[i - 1])));
            let traced = literal_seed
                || arg_words.iter().any(|w| {
                    w.to_ascii_lowercase().contains("seed")
                        || w == "stream_rng"
                        || w == "task_rng"
                        || (w.chars().any(|c| c.is_ascii_uppercase())
                            && w.chars()
                                .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'))
                });
            if traced {
                section.rng_traced += 1;
            } else if let Some(v) = violations.get_mut(fi) {
                v.push(RawViolation {
                    rule: RNG_PROVENANCE,
                    offset: s,
                    message: "RNG construction does not trace to a named seed source \
                              (stream_rng/task_rng/derive_seed or a literal seed); \
                              route it through a named stream"
                        .to_string(),
                });
            }
        }
    }
}

/// Is the word at `start` path-prefixed by `head::` (e.g. `rand::random`)?
fn path_head_is(masked: &[u8], start: usize, head: &[u8]) -> bool {
    let Some((c2, b':')) = prev_nonws(masked, start) else {
        return false;
    };
    if c2 == 0 || masked[c2 - 1] != b':' {
        return false;
    }
    let Some((end, b)) = prev_nonws(masked, c2 - 1) else {
        return false;
    };
    if !is_word(b) {
        return false;
    }
    let mut s = end;
    while s > 0 && is_word(masked[s - 1]) {
        s -= 1;
    }
    &masked[s..=end] == head
}

/// The balanced-paren argument span starting at the `(` at `open`
/// (exclusive of the parens).
fn arg_span(masked: &[u8], open: usize) -> &[u8] {
    let mut depth = 0usize;
    let mut i = open;
    while i < masked.len() {
        match masked[i] {
            b'(' => depth += 1,
            b')' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return masked.get(open + 1..i).unwrap_or(&[]);
                }
            }
            _ => {}
        }
        i += 1;
    }
    masked.get(open + 1..).unwrap_or(&[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::context_for;
    use crate::lexer::{lex, mask};

    struct Owned {
        ctx: FileContext,
        src: String,
        masked: Vec<u8>,
        items: Vec<Item>,
    }

    fn prep(path: &str, src: &str) -> Owned {
        let tokens = lex(src);
        let ctx = context_for(path, src);
        let masked = mask(src, &tokens);
        let items = crate::items::parse(&masked);
        Owned {
            ctx,
            src: src.to_string(),
            masked,
            items,
        }
    }

    fn run(files: &[Owned]) -> Semantics {
        let inputs: Vec<SemanticInput<'_>> = files
            .iter()
            .map(|o| SemanticInput {
                ctx: &o.ctx,
                src: &o.src,
                masked: &o.masked,
                items: &o.items,
                allows: Vec::new(),
            })
            .collect();
        analyze(&inputs)
    }

    fn rules_of(sem: &Semantics) -> Vec<&str> {
        sem.violations.iter().flatten().map(|v| v.rule).collect()
    }

    #[test]
    fn upward_layer_reference_fires() {
        let files = [prep(
            "crates/sched/src/x.rs",
            "use alert_bench::harness::Run;\n",
        )];
        let sem = run(&files);
        assert_eq!(rules_of(&sem), vec![CRATE_LAYER_DAG]);
        assert_eq!(sem.graph.layer_violations, 1);
    }

    #[test]
    fn downward_layer_reference_is_fine() {
        let files = [prep(
            "crates/sched/src/x.rs",
            "use alert_core::goal::Goal;\nuse alert_stats::units::Seconds;\n",
        )];
        let sem = run(&files);
        assert!(rules_of(&sem).is_empty());
        assert_eq!(sem.graph.layer_violations, 0);
    }

    #[test]
    fn undocumented_assert_in_pub_fn_fires() {
        let files = [prep(
            "crates/core/src/x.rs",
            "pub fn f(n: usize) { assert!(n > 0); }\n",
        )];
        let sem = run(&files);
        assert_eq!(rules_of(&sem), vec![PANIC_REACHABILITY]);
        assert_eq!(sem.graph.panic_sources, 1);
        assert_eq!(sem.graph.panic_accounted, 0);
    }

    #[test]
    fn documented_assert_is_accounted() {
        let files = [prep(
            "crates/core/src/x.rs",
            "/// Does things.\n///\n/// # Panics\n/// If `n` is zero.\npub fn f(n: usize) { assert!(n > 0); }\n",
        )];
        let sem = run(&files);
        assert!(rules_of(&sem).is_empty());
        assert_eq!(sem.graph.panic_accounted, 1);
    }

    #[test]
    fn assert_unreachable_from_pub_api_is_accounted() {
        let files = [prep(
            "crates/core/src/x.rs",
            "fn internal(n: usize) { assert!(n > 0); }\n",
        )];
        let sem = run(&files);
        assert!(rules_of(&sem).is_empty());
        assert_eq!(sem.graph.panic_accounted, 1);
    }

    #[test]
    fn assert_reachable_through_pub_caller_fires() {
        let files = [prep(
            "crates/core/src/x.rs",
            "pub fn api(n: usize) { internal(n); }\nfn internal(n: usize) { assert!(n > 0); }\n",
        )];
        let sem = run(&files);
        assert_eq!(rules_of(&sem), vec![PANIC_REACHABILITY]);
        let msg = sem
            .violations
            .iter()
            .flatten()
            .next()
            .map(|v| v.message.clone())
            .unwrap_or_default();
        assert!(msg.contains("alert_core::x::api"), "{msg}");
    }

    #[test]
    fn inverted_lock_pair_fires() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn ab(&self) {
        let g1 = self.a.lock();
        let g2 = self.b.lock();
    }
    pub fn ba(&self) {
        let g2 = self.b.lock();
        let g1 = self.a.lock();
    }
}
";
        let files = [prep("crates/sched/src/executor.rs", src)];
        let sem = run(&files);
        assert!(
            rules_of(&sem).contains(&LOCK_ORDER),
            "{:?}",
            sem.graph.lock_edges
        );
        assert!(sem.graph.lock_cycles > 0);
        assert_eq!(sem.graph.lock_edges.len(), 2);
    }

    #[test]
    fn consistent_lock_order_is_fine() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn ab(&self) {
        let g1 = self.a.lock();
        let g2 = self.b.lock();
    }
    pub fn ab2(&self) {
        let g1 = self.a.lock();
        let g2 = self.b.lock();
    }
}
";
        let files = [prep("crates/sched/src/executor.rs", src)];
        let sem = run(&files);
        assert!(!rules_of(&sem).contains(&LOCK_ORDER));
        assert_eq!(sem.graph.lock_cycles, 0);
        assert_eq!(sem.graph.lock_edges.len(), 1);
    }

    #[test]
    fn cross_fn_lock_cycle_via_call_graph_fires() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn outer(&self) {
        let g = self.a.lock();
        self.takes_b();
    }
    fn takes_b(&self) {
        let g = self.b.lock();
        let g2 = self.a.lock();
    }
}
";
        // takes_b creates b→a; outer creates a→{b,a}\{a} = a→b. Cycle.
        let files = [prep("crates/sched/src/executor.rs", src)];
        let sem = run(&files);
        assert!(rules_of(&sem).contains(&LOCK_ORDER));
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let src = "\
pub struct S { a: Mutex<Vec<u32>>, b: Mutex<u32> }
impl S {
    pub fn f(&self) {
        self.a.lock().push(1);
        let g = self.b.lock();
    }
}
";
        let files = [prep("crates/sched/src/executor.rs", src)];
        let sem = run(&files);
        assert_eq!(sem.graph.lock_edges.len(), 0);
    }

    #[test]
    fn dropped_guard_ends_span() {
        let src = "\
pub struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    pub fn f(&self) {
        let g = self.a.lock();
        drop(g);
        let h = self.b.lock();
    }
    pub fn g(&self) {
        let h = self.b.lock();
        drop(h);
        let g = self.a.lock();
    }
}
";
        let files = [prep("crates/sched/src/executor.rs", src)];
        let sem = run(&files);
        assert_eq!(sem.graph.lock_edges.len(), 0, "{:?}", sem.graph.lock_edges);
    }

    #[test]
    fn rng_from_rand_random_fires() {
        let files = [prep(
            "crates/workload/src/x.rs",
            "pub fn f() { let s: u64 = rand::random(); let r = StdRng::seed_from_u64(s); }\n",
        )];
        let sem = run(&files);
        // rand::random itself + the construction seeded from a value
        // with no seed provenance.
        assert!(rules_of(&sem).contains(&RNG_PROVENANCE));
        assert!(sem.graph.rng_constructions > sem.graph.rng_traced);
    }

    #[test]
    fn rng_from_rng_output_fires() {
        let files = [prep(
            "crates/workload/src/x.rs",
            "pub fn f(rng: &mut StdRng) { let r = StdRng::seed_from_u64(rng.next_u64()); }\n",
        )];
        let sem = run(&files);
        assert_eq!(rules_of(&sem), vec![RNG_PROVENANCE]);
    }

    #[test]
    fn seeded_constructions_are_traced() {
        let files = [
            prep(
                "crates/stats/src/rng.rs",
                "pub fn derive_seed(seed: u64, label: &str) -> u64 { seed }\npub fn stream_rng(seed: u64, label: &str) -> StdRng { StdRng::seed_from_u64(derive_seed(seed, label)) }\n",
            ),
            prep(
                "crates/workload/src/x.rs",
                "pub fn f(seed: u64) { let r = StdRng::seed_from_u64(seed); let t = StdRng::seed_from_u64(42); }\n",
            ),
        ];
        let sem = run(&files);
        assert!(rules_of(&sem).is_empty(), "{:?}", rules_of(&sem));
        assert_eq!(sem.graph.rng_constructions, 3);
        assert_eq!(sem.graph.rng_traced, 3);
    }
}
