//! An approximate whole-workspace call graph.
//!
//! Nodes are the `fn` items recovered by [`crate::items`]; edges are
//! call expressions in fn bodies, resolved against the module tree and
//! each file's `use` imports. Resolution is deliberately *approximate*
//! (DESIGN.md §10): when a call cannot be path-resolved, the graph
//! falls back to matching by bare name anywhere in the workspace and
//! records the edges as **low confidence**. Taint-style analyses
//! (panic reachability, lock-order propagation, RNG provenance) follow
//! high-confidence edges plus low-confidence edges whose name matched
//! exactly one workspace fn — a multi-candidate name match is recorded
//! for the report but never propagates, so heuristic fan-out cannot
//! manufacture violations.
//!
//! Construction is deterministic: files arrive sorted by path, items in
//! source order, and every map is a `BTreeMap`, so node ids, edge order
//! and the serialized summary are byte-stable across runs and
//! filesystems (property-tested in `tests/graph_props.rs`).

use crate::context::FileContext;
use crate::items::{walk, Item, ItemKind, Vis};
use serde::Serialize;
use std::collections::BTreeMap;

/// How a call edge was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Confidence {
    /// Path-resolved through the module tree / `use` imports.
    High,
    /// Name-heuristic fallback (bare-name or method-name match).
    Low,
}

/// One fn node.
#[derive(Debug, Clone)]
pub struct FnNode {
    /// Index of the owning file in the scanned-file list.
    pub file: usize,
    /// Crate path token (`alert_core`, …; `alert` for the root crate).
    pub crate_token: String,
    /// Inline-module path inside the file (file-level module included).
    pub module: Vec<String>,
    /// Self type when the fn lives in an `impl`/`trait` block.
    pub self_ty: Option<String>,
    /// The fn name.
    pub name: String,
    /// Byte span of the whole item in its file.
    pub span: (usize, usize),
    /// Byte span of the body, when the fn has one.
    pub body: Option<(usize, usize)>,
    /// Raw parameter-list text.
    pub params: String,
    /// Raw return-type text (includes `->` and any `where` clause).
    pub ret: String,
    /// Whether the fn itself is `pub` **and** every enclosing inline
    /// module is `pub` **and** its file module is publicly declared —
    /// the approximation of "part of the crate's public API".
    pub pub_api: bool,
}

impl FnNode {
    /// Human-readable path, e.g. `alert_core::goal::Goal::validate`.
    pub fn display_path(&self) -> String {
        let mut parts = vec![self.crate_token.clone()];
        parts.extend(self.module.iter().cloned());
        if let Some(ty) = &self.self_ty {
            parts.push(ty.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// One call edge.
#[derive(Debug, Clone)]
pub struct Edge {
    /// Caller node id.
    pub from: usize,
    /// Callee node id.
    pub to: usize,
    /// Resolution quality.
    pub confidence: Confidence,
    /// Number of candidate fns the call matched (1 for path-resolved).
    pub candidates: usize,
    /// Byte offset of the call site in the caller's file.
    pub offset: usize,
}

impl Edge {
    /// Whether taint-style analyses may follow this edge: path-resolved,
    /// or a name heuristic that matched exactly one fn in the workspace.
    pub fn propagates(&self) -> bool {
        self.confidence == Confidence::High || self.candidates == 1
    }
}

/// Everything the graph knows about one scanned file.
pub struct FileFns {
    /// Workspace-relative path.
    pub path: String,
    /// `use` imports: last-segment alias → full normalized path.
    pub imports: BTreeMap<String, String>,
}

/// The whole-workspace call graph.
pub struct CallGraph {
    /// All fn nodes, in (file, source-order) order.
    pub nodes: Vec<FnNode>,
    /// All edges, in caller order.
    pub edges: Vec<Edge>,
    /// Per-file import tables (parallel to the scanned-file list).
    pub files: Vec<FileFns>,
    /// Calls that matched nothing in the workspace (std / vendor calls
    /// mostly); counted for the report.
    pub unresolved_calls: usize,
    /// Forward adjacency over propagating edges.
    fwd: Vec<Vec<usize>>,
    /// Reverse adjacency over propagating edges.
    rev: Vec<Vec<usize>>,
}

/// Serializable graph roll-up for the `graph` section of `LINT.json`.
#[derive(Debug, Serialize)]
pub struct GraphStats {
    /// Files whose items were parsed.
    pub files_parsed: usize,
    /// Total fn nodes.
    pub fns: usize,
    /// Public-API fn nodes.
    pub pub_fns: usize,
    /// Total edges.
    pub edges: usize,
    /// Path-resolved edges.
    pub edges_high: usize,
    /// Name-heuristic edges.
    pub edges_low: usize,
    /// Calls matching no workspace fn (external).
    pub unresolved_calls: usize,
}

/// A file as the graph builder consumes it.
pub struct GraphInput<'a> {
    /// File context (path, kind, test spans).
    pub ctx: &'a FileContext,
    /// Masked source bytes.
    pub masked: &'a [u8],
    /// Parsed item tree.
    pub items: &'a [Item],
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Crate path token for a file: `crates/core/...` → `alert_core`, the
/// root package → `alert`.
pub fn crate_token(ctx: &FileContext) -> String {
    ctx.crate_name.replace('-', "_")
}

/// The file-level module path of a file inside its crate:
/// `crates/core/src/goal.rs` → `["goal"]`, `lib.rs`/`main.rs`/bins →
/// `[]`, `src/foo/bar.rs` → `["foo", "bar"]`.
fn file_module(path: &str) -> Vec<String> {
    let parts: Vec<&str> = path.split('/').collect();
    let src_idx = parts.iter().position(|p| *p == "src");
    let Some(si) = src_idx else { return Vec::new() };
    let tail = &parts[si + 1..];
    let mut module = Vec::new();
    for (i, part) in tail.iter().enumerate() {
        let last = i + 1 == tail.len();
        if last {
            if let Some(stem) = part.strip_suffix(".rs") {
                if stem != "lib" && stem != "main" && stem != "mod" {
                    module.push(stem.to_string());
                }
            }
        } else if *part == "bin" {
            // Bin targets are their own crate roots.
            return Vec::new();
        } else {
            module.push(part.to_string());
        }
    }
    module
}

impl CallGraph {
    /// Builds the graph from every scanned file. `files` must be sorted
    /// by path (the workspace scanner guarantees it), which makes node
    /// ids deterministic.
    pub fn build(files: &[GraphInput<'_>]) -> CallGraph {
        // Pass 0: which file-level modules are publicly declared, per
        // crate: from `pub mod x;` declarations in crate roots.
        let mut pub_file_mods: BTreeMap<(String, String), bool> = BTreeMap::new();
        for f in files {
            let is_crate_root = f.ctx.path.ends_with("/lib.rs") || f.ctx.path.ends_with("/main.rs");
            if !is_crate_root {
                continue;
            }
            let token = crate_token(f.ctx);
            for it in f.items {
                if it.kind == ItemKind::ModDecl {
                    pub_file_mods.insert((token.clone(), it.name.clone()), it.vis == Vis::Pub);
                }
            }
        }

        // Pass 1: collect nodes and per-file imports.
        let mut nodes: Vec<FnNode> = Vec::new();
        let mut file_fns: Vec<FileFns> = Vec::new();
        for (fi, f) in files.iter().enumerate() {
            let token = crate_token(f.ctx);
            let base_mod = file_module(&f.ctx.path);
            let file_mod_pub = base_mod.first().is_none_or(|m| {
                *pub_file_mods
                    .get(&(token.clone(), m.clone()))
                    .unwrap_or(&true)
            });
            let mut imports = BTreeMap::new();
            collect_imports(f.items, &mut imports);
            // Walk with pub-ancestry tracking: recompute by walking the
            // tree manually so we know whether every enclosing inline
            // mod is pub.
            collect_fns(
                f.items,
                fi,
                &token,
                &base_mod,
                file_mod_pub,
                &mut Vec::new(),
                true,
                None,
                &mut nodes,
            );
            file_fns.push(FileFns {
                path: f.ctx.path.clone(),
                imports,
            });
        }

        // Name index: bare fn name → node ids (sorted by construction).
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        // Qualified indexes for path resolution.
        // (crate, module-joined, name) → id; (crate, self_ty, name) → ids.
        let mut by_path: BTreeMap<(String, String, String), usize> = BTreeMap::new();
        let mut by_ty: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        let mut by_crate_name: BTreeMap<(String, String), Vec<usize>> = BTreeMap::new();
        for (id, n) in nodes.iter().enumerate() {
            by_name.entry(&n.name).or_default().push(id);
            by_crate_name
                .entry((n.crate_token.clone(), n.name.clone()))
                .or_default()
                .push(id);
            if n.self_ty.is_none() {
                by_path.insert(
                    (n.crate_token.clone(), n.module.join("::"), n.name.clone()),
                    id,
                );
            }
            if let Some(ty) = &n.self_ty {
                by_ty
                    .entry((ty.clone(), n.name.clone()))
                    .or_default()
                    .push(id);
            }
        }

        // Pass 2: extract and resolve calls from each fn body.
        let mut edges: Vec<Edge> = Vec::new();
        let mut unresolved = 0usize;
        for (caller_id, node) in nodes.iter().enumerate() {
            let Some((b0, b1)) = node.body else { continue };
            let f = &files[node.file];
            let imports = &file_fns[node.file].imports;
            for call in extract_calls(&f.masked[..b1.min(f.masked.len())], b0) {
                let resolved = resolve_call(
                    &call,
                    node,
                    imports,
                    &by_path,
                    &by_ty,
                    &by_name,
                    &by_crate_name,
                );
                match resolved {
                    Resolution::Direct(to) => edges.push(Edge {
                        from: caller_id,
                        to,
                        confidence: Confidence::High,
                        candidates: 1,
                        offset: call.offset,
                    }),
                    Resolution::Heuristic(ids) => {
                        let candidates = ids.len();
                        for to in ids {
                            edges.push(Edge {
                                from: caller_id,
                                to,
                                confidence: Confidence::Low,
                                candidates,
                                offset: call.offset,
                            });
                        }
                    }
                    Resolution::External => unresolved += 1,
                }
            }
        }

        let mut fwd = vec![Vec::new(); nodes.len()];
        let mut rev = vec![Vec::new(); nodes.len()];
        for e in &edges {
            if e.propagates() {
                fwd[e.from].push(e.to);
                rev[e.to].push(e.from);
            }
        }
        CallGraph {
            nodes,
            edges,
            files: file_fns,
            unresolved_calls: unresolved,
            fwd,
            rev,
        }
    }

    /// Roll-up stats for the report.
    pub fn stats(&self, files_parsed: usize) -> GraphStats {
        GraphStats {
            files_parsed,
            fns: self.nodes.len(),
            pub_fns: self.nodes.iter().filter(|n| n.pub_api).count(),
            edges: self.edges.len(),
            edges_high: self
                .edges
                .iter()
                .filter(|e| e.confidence == Confidence::High)
                .count(),
            edges_low: self
                .edges
                .iter()
                .filter(|e| e.confidence == Confidence::Low)
                .count(),
            unresolved_calls: self.unresolved_calls,
        }
    }

    /// Node ids whose body span contains `offset` in file `file`.
    pub fn enclosing_fn(&self, file: usize, offset: usize) -> Option<usize> {
        // Innermost fn wins (closures aside, fns do not nest often).
        let mut best: Option<(usize, usize)> = None;
        for (id, n) in self.nodes.iter().enumerate() {
            if n.file != file {
                continue;
            }
            if let Some((b0, b1)) = n.body {
                if (b0..b1).contains(&offset) {
                    let width = b1 - b0;
                    if best.is_none_or(|(_, w)| width < w) {
                        best = Some((id, width));
                    }
                }
            }
        }
        best.map(|(id, _)| id)
    }

    /// All nodes reachable *from* `start` over propagating edges
    /// (excluding `start` unless it is on a cycle).
    pub fn reachable_from(&self, start: usize) -> Vec<usize> {
        bfs(&self.fwd, start)
    }

    /// All nodes that can reach `target` over propagating edges.
    pub fn reaching(&self, target: usize) -> Vec<usize> {
        bfs(&self.rev, target)
    }

    /// Direct propagating callees of `id`.
    pub fn callees(&self, id: usize) -> &[usize] {
        self.fwd.get(id).map_or(&[], Vec::as_slice)
    }
}

fn bfs(adj: &[Vec<usize>], start: usize) -> Vec<usize> {
    let mut seen = vec![false; adj.len()];
    let mut queue = std::collections::VecDeque::new();
    let mut out = Vec::new();
    queue.push_back(start);
    while let Some(n) = queue.pop_front() {
        for &m in adj.get(n).map_or(&[][..], Vec::as_slice) {
            if !seen[m] {
                seen[m] = true;
                out.push(m);
                queue.push_back(m);
            }
        }
    }
    out
}

/// Recursively collects fn nodes with module/visibility ancestry.
#[allow(clippy::too_many_arguments)]
fn collect_fns(
    items: &[Item],
    file: usize,
    crate_token: &str,
    base_mod: &[String],
    file_mod_pub: bool,
    inline_mods: &mut Vec<String>,
    ancestors_pub: bool,
    self_ty: Option<&str>,
    out: &mut Vec<FnNode>,
) {
    for it in items {
        match it.kind {
            ItemKind::Fn => {
                let mut module = base_mod.to_vec();
                module.extend(inline_mods.iter().cloned());
                out.push(FnNode {
                    file,
                    crate_token: crate_token.to_string(),
                    module,
                    self_ty: self_ty.map(str::to_string),
                    name: it.name.clone(),
                    span: it.span,
                    body: it.body,
                    params: it.params.clone(),
                    ret: it.ret.clone(),
                    pub_api: it.vis == Vis::Pub && ancestors_pub && file_mod_pub,
                });
            }
            ItemKind::Mod => {
                inline_mods.push(it.name.clone());
                collect_fns(
                    &it.children,
                    file,
                    crate_token,
                    base_mod,
                    file_mod_pub,
                    inline_mods,
                    ancestors_pub && it.vis == Vis::Pub,
                    None,
                    out,
                );
                inline_mods.pop();
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_fns(
                    &it.children,
                    file,
                    crate_token,
                    base_mod,
                    file_mod_pub,
                    inline_mods,
                    ancestors_pub,
                    Some(&it.name),
                    out,
                );
            }
            _ => {}
        }
    }
}

/// Flattens `use` items into alias → full path entries. Groups expand
/// (`use a::{b, c as d}` → `b → a::b`, `d → a::c`); globs are skipped.
fn collect_imports(items: &[Item], out: &mut BTreeMap<String, String>) {
    fn add(prefix: &str, segment: &str, out: &mut BTreeMap<String, String>) {
        let seg = segment.trim();
        if seg.is_empty() || seg == "*" {
            return;
        }
        if let Some(brace) = seg.find('{') {
            let inner_prefix = format!("{prefix}{}", &seg[..brace]);
            let inner = seg[brace + 1..].trim_end_matches('}');
            for part in split_top_commas(inner) {
                add(&inner_prefix, part, out);
            }
            return;
        }
        let (path_part, alias) = match seg.split_once(" as ") {
            Some((p, a)) => (p.trim(), a.trim().to_string()),
            None => {
                let last = seg.rsplit("::").next().unwrap_or(seg).trim().to_string();
                (seg, last)
            }
        };
        if alias.is_empty() || alias == "self" {
            return;
        }
        out.insert(alias, format!("{prefix}{path_part}"));
    }
    walk(items, &mut |it, _, _| {
        if it.kind == ItemKind::Use {
            add("", &it.name, out);
        }
    });
}

/// Splits on commas that are not nested inside braces.
fn split_top_commas(s: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0;
    for (i, c) in s.char_indices() {
        match c {
            '{' => depth += 1,
            '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&s[start..]);
    out
}

/// One extracted call reference.
#[derive(Debug, Clone)]
pub struct CallRef {
    /// Path segments (`["Foo", "bar"]` for `Foo::bar(…)`; one segment
    /// for bare calls).
    pub segments: Vec<String>,
    /// Whether this was a method call (`.name(…)`).
    pub method: bool,
    /// Byte offset of the (first segment of the) call in the file.
    pub offset: usize,
}

/// Scans a masked body span (`bytes[.. end]` with logical start
/// `start`) for call-looking references: `path::seg(`, `ident(`, and
/// `.method(`. Macros (`name!`) are skipped — the rules that care about
/// macros scan for them lexically.
pub fn extract_calls(bytes: &[u8], start: usize) -> Vec<CallRef> {
    let mut out = Vec::new();
    let mut i = start;
    let end = bytes.len();
    while i < end {
        if !is_word(bytes[i]) || bytes[i].is_ascii_digit() || (i > 0 && is_word(bytes[i - 1])) {
            i += 1;
            continue;
        }
        // Collect a `::`-joined path starting here.
        let path_start = i;
        let mut segments = Vec::new();
        let mut j = i;
        loop {
            let seg_start = j;
            while j < end && is_word(bytes[j]) {
                j += 1;
            }
            segments.push(String::from_utf8_lossy(&bytes[seg_start..j]).into_owned());
            let mut k = j;
            while k < end && bytes[k].is_ascii_whitespace() {
                k += 1;
            }
            if k + 1 < end && bytes[k] == b':' && bytes[k + 1] == b':' {
                let mut m = k + 2;
                while m < end && bytes[m].is_ascii_whitespace() {
                    m += 1;
                }
                // Turbofish `::<…>` — skip the generics, expect `(`.
                if m < end && bytes[m] == b'<' {
                    let after = skip_angles(bytes, m, end);
                    let mut n = after;
                    while n < end && bytes[n].is_ascii_whitespace() {
                        n += 1;
                    }
                    j = n;
                    break;
                }
                if m < end && is_word(bytes[m]) && !bytes[m].is_ascii_digit() {
                    j = m;
                    continue;
                }
                j = m;
                break;
            }
            j = k;
            break;
        }
        // A call iff the next byte is `(`; `name!(…)` is a macro.
        let is_call = j < end && bytes[j] == b'(';
        let is_macro = j < end && bytes[j] == b'!';
        if is_call && !is_macro {
            let before = prev_nonws(bytes, path_start);
            let method = before == Some(b'.');
            // Skip keyword-looking heads (`if (…)`, `while(…)`, …) and
            // struct-field inits; a one-segment "call" after `.` is a
            // method, after anything else a free fn.
            let head = segments.first().map(String::as_str).unwrap_or("");
            const KEYWORDS: &[&str] = &[
                "if", "while", "for", "match", "return", "loop", "fn", "let", "else", "move", "in",
                "as", "ref", "mut", "box", "await", "dyn", "impl", "where", "unsafe",
            ];
            if !KEYWORDS.contains(&head) {
                out.push(CallRef {
                    segments,
                    method,
                    offset: path_start,
                });
            }
        }
        i = j.max(path_start + 1);
    }
    out
}

fn prev_nonws(bytes: &[u8], i: usize) -> Option<u8> {
    (0..i)
        .rev()
        .map(|j| bytes[j])
        .find(|b| !b.is_ascii_whitespace())
}

fn skip_angles(bytes: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match bytes[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && (bytes[i - 1] == b'-' || bytes[i - 1] == b'=') => {}
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            b';' | b'{' => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

enum Resolution {
    Direct(usize),
    Heuristic(Vec<usize>),
    External,
}

/// Resolves one call reference from inside `caller`.
#[allow(clippy::too_many_arguments)]
fn resolve_call(
    call: &CallRef,
    caller: &FnNode,
    imports: &BTreeMap<String, String>,
    by_path: &BTreeMap<(String, String, String), usize>,
    by_ty: &BTreeMap<(String, String), Vec<usize>>,
    by_name: &BTreeMap<&str, Vec<usize>>,
    by_crate_name: &BTreeMap<(String, String), Vec<usize>>,
) -> Resolution {
    let Some(last) = call.segments.last() else {
        return Resolution::External;
    };
    let name = last.as_str();
    // Method call: all fns with that name, anywhere (the receiver type
    // is unknown without inference, so every candidate is recorded).
    if call.method {
        return heuristic(name, by_name);
    }
    if call.segments.len() == 1 {
        // Bare call: same module of the same crate first, then an
        // imported fn, then the crate root, then name heuristic.
        let key = (
            caller.crate_token.clone(),
            caller.module.join("::"),
            name.to_string(),
        );
        if let Some(&id) = by_path.get(&key) {
            return Resolution::Direct(id);
        }
        if let Some(full) = imports.get(name) {
            if let Some(id) = resolve_full_path(full, by_path, by_ty) {
                return Resolution::Direct(id);
            }
        }
        let root_key = (caller.crate_token.clone(), String::new(), name.to_string());
        if let Some(&id) = by_path.get(&root_key) {
            return Resolution::Direct(id);
        }
        return heuristic(name, by_name);
    }
    // Multi-segment path: normalize the head.
    let mut segs: Vec<String> = call.segments.clone();
    let head = segs.first().cloned().unwrap_or_default();
    match head.as_str() {
        "crate" => {
            segs.remove(0);
            segs.insert(0, caller.crate_token.clone());
        }
        "self" => {
            segs.remove(0);
            let mut pre = vec![caller.crate_token.clone()];
            pre.extend(caller.module.iter().cloned());
            pre.extend(segs);
            segs = pre;
        }
        "super" => {
            segs.remove(0);
            let mut module = caller.module.clone();
            module.pop();
            let mut pre = vec![caller.crate_token.clone()];
            pre.extend(module);
            pre.extend(segs);
            segs = pre;
        }
        "Self" => {
            if let Some(ty) = &caller.self_ty {
                segs.remove(0);
                segs.insert(0, ty.clone());
            }
        }
        _ => {
            if let Some(full) = imports.get(&head) {
                let mut pre: Vec<String> = full.split("::").map(|s| s.trim().to_string()).collect();
                pre.extend(segs.into_iter().skip(1));
                segs = pre;
            }
        }
    }
    let joined = segs.join("::");
    if let Some(id) = resolve_full_path(&joined, by_path, by_ty) {
        return Resolution::Direct(id);
    }
    // `Type::fn` without import info: try the type index directly.
    if let Some((_, rest)) = segs.split_last() {
        if let Some((ty, _)) = rest.split_last() {
            let key = (ty.clone(), name.to_string());
            if let Some(ids) = by_ty.get(&key) {
                return narrow(ids);
            }
            // `module::fn` relative to the current crate.
            let key = (
                caller.crate_token.clone(),
                rest.join("::"),
                name.to_string(),
            );
            if let Some(&id) = by_path.get(&key) {
                return Resolution::Direct(id);
            }
            // `alert_x::fn` — crate-qualified bare name.
            if let (2, Some(head2)) = (segs.len(), segs.first()) {
                if head2.starts_with("alert") {
                    if let Some(ids) = by_crate_name.get(&(head2.clone(), name.to_string())) {
                        return narrow(ids);
                    }
                }
            }
        }
    }
    heuristic(name, by_name)
}

/// A unique candidate is a direct resolution; several are heuristic.
fn narrow(ids: &[usize]) -> Resolution {
    match ids {
        [only] => Resolution::Direct(*only),
        [] => Resolution::External,
        many => Resolution::Heuristic(many.to_vec()),
    }
}

fn heuristic(name: &str, by_name: &BTreeMap<&str, Vec<usize>>) -> Resolution {
    match by_name.get(name) {
        Some(ids) if !ids.is_empty() => Resolution::Heuristic(ids.clone()),
        _ => Resolution::External,
    }
}

/// Resolves a fully-qualified textual path (`alert_core::goal::Goal::validate`
/// or `alert_stats::rng::stream_rng`) against the indexes.
fn resolve_full_path(
    full: &str,
    by_path: &BTreeMap<(String, String, String), usize>,
    by_ty: &BTreeMap<(String, String), Vec<usize>>,
) -> Option<usize> {
    let segs: Vec<&str> = full.split("::").map(str::trim).collect();
    let (&name, rest) = segs.split_last()?;
    let (&krate, mods) = rest.split_first()?;
    // Free fn in a module.
    let key = (krate.to_string(), mods.join("::"), name.to_string());
    if let Some(&id) = by_path.get(&key) {
        return Some(id);
    }
    // Assoc fn: last module segment is really a type name.
    if let Some((&ty, _)) = mods.split_last() {
        if let Some([only]) = by_ty
            .get(&(ty.to_string(), name.to_string()))
            .map(Vec::as_slice)
        {
            return Some(*only);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::context_for;
    use crate::lexer::{lex, mask};

    struct Owned {
        ctx: FileContext,
        masked: Vec<u8>,
        items: Vec<Item>,
    }

    fn prep(path: &str, src: &str) -> Owned {
        let tokens = lex(src);
        let ctx = context_for(path, src);
        let masked = mask(src, &tokens);
        let items = crate::items::parse(&masked);
        Owned { ctx, masked, items }
    }

    fn build(files: &[Owned]) -> CallGraph {
        let inputs: Vec<GraphInput<'_>> = files
            .iter()
            .map(|o| GraphInput {
                ctx: &o.ctx,
                masked: &o.masked,
                items: &o.items,
            })
            .collect();
        CallGraph::build(&inputs)
    }

    fn node(g: &CallGraph, path: &str) -> usize {
        g.nodes
            .iter()
            .position(|n| n.display_path() == path)
            .unwrap_or_else(|| {
                let all: Vec<String> = g.nodes.iter().map(|n| n.display_path()).collect();
                panic!("no node {path}; have {all:?}")
            })
    }

    #[test]
    fn same_module_call_resolves_high() {
        let files = [prep(
            "crates/core/src/a.rs",
            "pub fn outer() { inner(); }\nfn inner() {}\n",
        )];
        let g = build(&files);
        let from = node(&g, "alert_core::a::outer");
        let to = node(&g, "alert_core::a::inner");
        assert!(g
            .edges
            .iter()
            .any(|e| e.from == from && e.to == to && e.confidence == Confidence::High));
    }

    #[test]
    fn cross_crate_call_through_import() {
        let files = [
            prep(
                "crates/stats/src/rng.rs",
                "pub fn stream_rng(seed: u64) -> u64 { seed }\n",
            ),
            prep(
                "crates/platform/src/contention.rs",
                "use alert_stats::rng::stream_rng;\npub fn f() { stream_rng(1); }\n",
            ),
        ];
        let g = build(&files);
        let from = node(&g, "alert_platform::contention::f");
        let to = node(&g, "alert_stats::rng::stream_rng");
        let e = g
            .edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .expect("edge exists");
        assert_eq!(e.confidence, Confidence::High);
    }

    #[test]
    fn method_call_is_low_confidence_unique_propagates() {
        let files = [prep(
            "crates/core/src/a.rs",
            "struct S;\nimpl S { pub fn only_here(&self) {} }\npub fn f(s: &S) { s.only_here(); }\n",
        )];
        let g = build(&files);
        let from = node(&g, "alert_core::a::f");
        let to = node(&g, "alert_core::a::S::only_here");
        let e = g
            .edges
            .iter()
            .find(|e| e.from == from && e.to == to)
            .expect("edge exists");
        assert_eq!(e.confidence, Confidence::Low);
        assert!(e.propagates());
        assert_eq!(g.reachable_from(from), vec![to]);
    }

    #[test]
    fn ambiguous_method_does_not_propagate() {
        let files = [prep(
            "crates/core/src/a.rs",
            "struct A;\nstruct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\npub fn f(a: &A) { a.go(); }\n",
        )];
        let g = build(&files);
        let from = node(&g, "alert_core::a::f");
        let lows: Vec<&Edge> = g.edges.iter().filter(|e| e.from == from).collect();
        assert_eq!(lows.len(), 2);
        assert!(lows.iter().all(|e| !e.propagates()));
        assert!(g.reachable_from(from).is_empty());
    }

    #[test]
    fn pub_api_requires_pub_ancestry() {
        let files = [
            prep("crates/core/src/lib.rs", "pub mod alert;\nmod hidden;\n"),
            prep(
                "crates/core/src/alert.rs",
                "pub fn api() {}\nfn private() {}\n",
            ),
            prep("crates/core/src/hidden.rs", "pub fn not_api() {}\n"),
        ];
        let g = build(&files);
        assert!(g.nodes[node(&g, "alert_core::alert::api")].pub_api);
        assert!(!g.nodes[node(&g, "alert_core::alert::private")].pub_api);
        assert!(!g.nodes[node(&g, "alert_core::hidden::not_api")].pub_api);
    }

    #[test]
    fn assoc_fn_path_call() {
        let files = [prep(
            "crates/core/src/a.rs",
            "pub struct S;\nimpl S { pub fn new() -> S { S } }\npub fn f() { let _ = S::new(); }\n",
        )];
        let g = build(&files);
        let from = node(&g, "alert_core::a::f");
        let to = node(&g, "alert_core::a::S::new");
        assert!(g.edges.iter().any(|e| e.from == from && e.to == to));
    }

    #[test]
    fn determinism() {
        let files = [
            prep("crates/core/src/a.rs", "pub fn f() { g(); }\nfn g() {}\n"),
            prep("crates/core/src/b.rs", "pub fn h() { crate::a::f(); }\n"),
        ];
        let g1 = build(&files);
        let g2 = build(&files);
        let paths1: Vec<String> = g1.nodes.iter().map(|n| n.display_path()).collect();
        let paths2: Vec<String> = g2.nodes.iter().map(|n| n.display_path()).collect();
        assert_eq!(paths1, paths2);
        let e1: Vec<(usize, usize)> = g1.edges.iter().map(|e| (e.from, e.to)).collect();
        let e2: Vec<(usize, usize)> = g2.edges.iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(e1, e2);
    }
}
