//! An approximate item parser: masked source → module tree.
//!
//! The semantic rules ([`crate::semantic`]) need to know *where
//! functions live* (module path, enclosing impl, visibility) and *what a
//! file imports*, not what expressions mean. This parser recovers
//! exactly that subset from the masked byte string produced by
//! [`crate::lexer::mask`]: since comments and literals are already
//! blanked, brace matching and keyword scanning cannot be derailed by
//! prose, and the parser can stay a few hundred lines instead of
//! vendoring `syn`.
//!
//! Grammar subset (DESIGN.md §10):
//!
//! * items: `fn`, `struct`, `enum`, `trait`, `impl`, `mod` (inline and
//!   file-level declarations), `use`, `const`, `static`, `type`,
//!   `macro_rules!`, `extern crate`;
//! * visibility: `pub`, `pub(...)` (any restriction), private;
//! * fn signatures: modifiers (`const`/`async`/`unsafe`/`extern "…"`),
//!   generics with `->` inside bounds (`F: Fn(A) -> B`), the parameter
//!   list, and the raw return-type text;
//! * bodies are opaque byte spans — expressions are never parsed.
//!
//! Totality: like the lexer, parsing **never fails**. Unrecognized
//! constructs are skipped bytewise; every loop makes progress; property
//! tests in `tests/graph_props.rs` drive adversarial compositions
//! through the parser and assert it terminates with consistent spans.

use serde::Serialize;

/// Item classification (the subset the semantic rules consume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum ItemKind {
    /// A function or method (`fn`).
    Fn,
    /// An inline module with a body (`mod m { … }`).
    Mod,
    /// A file-level module declaration (`mod m;`).
    ModDecl,
    /// An `impl` block; `name` is the base identifier of the self type.
    Impl,
    /// A `trait` definition (children are its methods).
    Trait,
    /// A `struct`, `enum`, or `union` definition.
    Type,
    /// A `use` declaration; `name` holds the whitespace-normalized path
    /// text between `use` and `;`.
    Use,
    /// A `const` or `static` item.
    Const,
    /// Anything else that was recognized enough to skip (type aliases,
    /// `macro_rules!`, `extern crate`, …).
    Other,
}

/// Visibility as written at the item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Vis {
    /// `pub`.
    Pub,
    /// `pub(crate)`, `pub(super)`, `pub(in …)`.
    Restricted,
    /// No visibility keyword.
    Private,
}

/// One parsed item. Offsets are byte offsets into the (masked) source.
#[derive(Debug, Clone)]
pub struct Item {
    /// Classification.
    pub kind: ItemKind,
    /// Identifier: fn/struct/trait/mod name, impl self-type base ident,
    /// or the full normalized path for `use` items.
    pub name: String,
    /// Written visibility.
    pub vis: Vis,
    /// Full span of the item (keyword through body or `;`).
    pub span: (usize, usize),
    /// Span *inside* the braces of a body, when the item has one.
    pub body: Option<(usize, usize)>,
    /// Raw parameter-list text for `fn` items (between the parens).
    pub params: String,
    /// Raw return-type text for `fn` items (between `)` and the body,
    /// including any `where` clause).
    pub ret: String,
    /// Nested items for `mod`/`impl`/`trait` bodies.
    pub children: Vec<Item>,
}

/// Parses the full masked source of one file into a list of top-level
/// items (nested items hang off `children`). Never fails.
pub fn parse(masked: &[u8]) -> Vec<Item> {
    parse_range(masked, 0, masked.len(), 0)
}

/// Recursion limit for nested module/impl bodies: beyond this the body
/// is kept opaque (no children), which only makes the analysis *more*
/// approximate, never wrong about spans.
const MAX_DEPTH: usize = 16;

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Parses items in `masked[start..end]`.
fn parse_range(masked: &[u8], start: usize, end: usize, depth: usize) -> Vec<Item> {
    let mut items = Vec::new();
    let mut i = start;
    while i < end {
        let before = i;
        i = skip_trivia(masked, i, end);
        if i >= end {
            break;
        }
        if let Some((item, next)) = parse_item(masked, i, end, depth) {
            items.push(item);
            i = next.max(i + 1);
        } else {
            // Error recovery: skip one word or one byte, but never a
            // brace opener unbalanced — skip balanced groups whole so a
            // stray block cannot desynchronize sibling items.
            match masked[i] {
                b'{' | b'(' | b'[' => i = skip_balanced(masked, i, end),
                b if is_word(b) => {
                    while i < end && is_word(masked[i]) {
                        i += 1;
                    }
                }
                _ => i += 1,
            }
        }
        if i <= before {
            i = before + 1;
        }
    }
    items
}

/// Skips whitespace and attributes (`#[…]` / `#![…]`).
fn skip_trivia(masked: &[u8], mut i: usize, end: usize) -> usize {
    loop {
        while i < end && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < end && masked[i] == b'#' {
            let mut j = i + 1;
            if masked.get(j) == Some(&b'!') {
                j += 1;
            }
            while j < end && masked[j].is_ascii_whitespace() {
                j += 1;
            }
            if masked.get(j) == Some(&b'[') {
                i = skip_balanced(masked, j, end);
                continue;
            }
        }
        return i;
    }
}

/// From an opening bracket at `open`, returns the offset just past its
/// matching closer (`()`/`[]`/`{}` all nest against each other).
fn skip_balanced(masked: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match masked[i] {
            b'(' | b'[' | b'{' => depth += 1,
            b')' | b']' | b'}' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Reads the identifier starting at `i`; returns (text end, name).
fn read_ident(masked: &[u8], i: usize, end: usize) -> Option<(usize, String)> {
    if i >= end || !is_word(masked[i]) || masked[i].is_ascii_digit() {
        return None;
    }
    let mut j = i;
    while j < end && is_word(masked[j]) {
        j += 1;
    }
    Some((j, String::from_utf8_lossy(&masked[i..j]).into_owned()))
}

/// Matches the keyword `kw` at `i` (word-boundary safe); returns the
/// offset past it.
fn keyword(masked: &[u8], i: usize, end: usize, kw: &str) -> Option<usize> {
    let bytes = kw.as_bytes();
    let stop = i.checked_add(bytes.len())?;
    if stop > end || &masked[i..stop] != bytes {
        return None;
    }
    if stop < end && is_word(masked[stop]) {
        return None;
    }
    Some(stop)
}

fn skip_ws(masked: &[u8], mut i: usize, end: usize) -> usize {
    while i < end && masked[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

/// Skips a generics list starting at `<`. `->` and `=>` arrows inside
/// bounds (`F: Fn(A) -> B`) must not close the list, so a `>` preceded
/// by `-` or `=` is passed over.
fn skip_generics(masked: &[u8], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match masked[i] {
            b'<' => depth += 1,
            b'>' if i > 0 && (masked[i - 1] == b'-' || masked[i - 1] == b'=') => {}
            b'>' => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            // A generics list never contains `;` or `{`; bail out so a
            // stray `<` (comparison operator) cannot swallow the item.
            b';' | b'{' => return i,
            _ => {}
        }
        i += 1;
    }
    end
}

/// Attempts to parse one item at `i`. Returns the item and the offset
/// just past it, or `None` when `i` does not start a recognized item.
fn parse_item(masked: &[u8], i: usize, end: usize, depth: usize) -> Option<(Item, usize)> {
    let start = i;
    // Visibility.
    let (vis, mut p) = if let Some(after) = keyword(masked, i, end, "pub") {
        let q = skip_ws(masked, after, end);
        if masked.get(q) == Some(&b'(') {
            (
                Vis::Restricted,
                skip_ws(masked, skip_balanced(masked, q, end), end),
            )
        } else {
            (Vis::Pub, q)
        }
    } else {
        (Vis::Private, i)
    };
    // Fn modifiers (`const fn`, `async fn`, `unsafe fn`, `extern "C" fn`).
    // `const` alone introduces a const item instead; disambiguated below.
    loop {
        if let Some(after) = keyword(masked, p, end, "const") {
            let q = skip_ws(masked, after, end);
            // `const fn` / `const unsafe fn` keep scanning; `const NAME`
            // is a const item.
            if keyword(masked, q, end, "fn").is_some()
                || keyword(masked, q, end, "unsafe").is_some()
                || keyword(masked, q, end, "extern").is_some()
                || keyword(masked, q, end, "async").is_some()
            {
                p = q;
                continue;
            }
            return parse_terminated(masked, start, after, end, vis, ItemKind::Const);
        }
        if let Some(after) = keyword(masked, p, end, "async")
            .or_else(|| keyword(masked, p, end, "unsafe"))
            .or_else(|| keyword(masked, p, end, "extern"))
        {
            p = skip_ws(masked, after, end);
            continue;
        }
        break;
    }

    if let Some(after) = keyword(masked, p, end, "fn") {
        return parse_fn(masked, start, after, end, vis);
    }
    if let Some(after) = keyword(masked, p, end, "mod") {
        return parse_mod(masked, start, after, end, vis, depth);
    }
    if let Some(after) = keyword(masked, p, end, "use") {
        return parse_use(masked, start, after, end, vis);
    }
    if let Some(after) = keyword(masked, p, end, "impl") {
        return parse_impl(masked, start, after, end, depth);
    }
    if let Some(after) = keyword(masked, p, end, "trait") {
        return parse_named_body(masked, start, after, end, vis, ItemKind::Trait, depth);
    }
    if let Some(after) = keyword(masked, p, end, "struct")
        .or_else(|| keyword(masked, p, end, "enum"))
        .or_else(|| keyword(masked, p, end, "union"))
    {
        return parse_type_item(masked, start, after, end, vis);
    }
    if let Some(after) = keyword(masked, p, end, "static") {
        return parse_terminated(masked, start, after, end, vis, ItemKind::Const);
    }
    if let Some(after) = keyword(masked, p, end, "type") {
        return parse_terminated(masked, start, after, end, vis, ItemKind::Other);
    }
    if let Some(after) = keyword(masked, p, end, "macro_rules") {
        return parse_macro_rules(masked, start, after, end);
    }
    None
}

/// `fn name <generics>? ( params ) ret? (where …)? ({ body } | ;)`.
fn parse_fn(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
) -> Option<(Item, usize)> {
    let p = skip_ws(masked, after_kw, end);
    let (mut q, name) = read_ident(masked, p, end)?;
    q = skip_ws(masked, q, end);
    if masked.get(q) == Some(&b'<') {
        q = skip_ws(masked, skip_generics(masked, q, end), end);
    }
    if masked.get(q) != Some(&b'(') {
        return None;
    }
    let params_open = q;
    let params_end = skip_balanced(masked, q, end);
    let params =
        normalize(&masked[params_open + 1..params_end.saturating_sub(1).max(params_open + 1)]);
    // Scan to the body `{` or a `;` (trait method declaration). Return
    // type and where clause cannot contain top-level braces in the
    // supported subset.
    let mut r = params_end;
    while r < end && masked[r] != b'{' && masked[r] != b';' {
        r += 1;
    }
    let ret = normalize(&masked[params_end..r.min(end)]);
    if r < end && masked[r] == b'{' {
        let close = skip_balanced(masked, r, end);
        let item = Item {
            kind: ItemKind::Fn,
            name,
            vis,
            span: (start, close),
            body: Some((r + 1, close.saturating_sub(1).max(r + 1))),
            params,
            ret,
            children: Vec::new(),
        };
        Some((item, close))
    } else {
        let stop = if r < end { r + 1 } else { end };
        let item = Item {
            kind: ItemKind::Fn,
            name,
            vis,
            span: (start, stop),
            body: None,
            params,
            ret,
            children: Vec::new(),
        };
        Some((item, stop))
    }
}

/// `mod name ;` or `mod name { … }`.
fn parse_mod(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
    depth: usize,
) -> Option<(Item, usize)> {
    let p = skip_ws(masked, after_kw, end);
    let (q, name) = read_ident(masked, p, end)?;
    let r = skip_ws(masked, q, end);
    match masked.get(r) {
        Some(&b';') => Some((
            Item {
                kind: ItemKind::ModDecl,
                name,
                vis,
                span: (start, r + 1),
                body: None,
                params: String::new(),
                ret: String::new(),
                children: Vec::new(),
            },
            r + 1,
        )),
        Some(&b'{') => {
            let close = skip_balanced(masked, r, end);
            let inner = (r + 1, close.saturating_sub(1).max(r + 1));
            let children = if depth < MAX_DEPTH {
                parse_range(masked, inner.0, inner.1, depth + 1)
            } else {
                Vec::new()
            };
            Some((
                Item {
                    kind: ItemKind::Mod,
                    name,
                    vis,
                    span: (start, close),
                    body: Some(inner),
                    params: String::new(),
                    ret: String::new(),
                    children,
                },
                close,
            ))
        }
        _ => None,
    }
}

/// `use path;` — `name` is the normalized text between `use` and `;`
/// (groups `{a, b}` included verbatim; expansion happens in the graph).
fn parse_use(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
) -> Option<(Item, usize)> {
    let mut i = skip_ws(masked, after_kw, end);
    let path_start = i;
    while i < end && masked[i] != b';' {
        if masked[i] == b'{' {
            i = skip_balanced(masked, i, end);
        } else {
            i += 1;
        }
    }
    let item = Item {
        kind: ItemKind::Use,
        name: normalize(&masked[path_start..i.min(end)]),
        vis,
        span: (start, (i + 1).min(end)),
        body: None,
        params: String::new(),
        ret: String::new(),
        children: Vec::new(),
    };
    Some((item, (i + 1).min(end)))
}

/// `impl<G>? Type { … }` or `impl<G>? Trait for Type { … }`; `name` is
/// the base identifier of the self type.
fn parse_impl(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    depth: usize,
) -> Option<(Item, usize)> {
    let mut p = skip_ws(masked, after_kw, end);
    if masked.get(p) == Some(&b'<') {
        p = skip_ws(masked, skip_generics(masked, p, end), end);
    }
    // Scan the header up to the body `{` (skipping generics bumps along
    // the way so `Foo<Bar<Baz>>` cannot confuse the `for` search).
    let mut q = p;
    let mut for_at: Option<usize> = None;
    while q < end && masked[q] != b'{' && masked[q] != b';' {
        if masked[q] == b'<' {
            q = skip_generics(masked, q, end);
            continue;
        }
        if let Some(after) = keyword(masked, q, end, "for") {
            // Word-boundary on the left too.
            if q == 0 || !is_word(masked[q - 1]) {
                for_at = Some(after);
            }
            q = after;
            continue;
        }
        if let Some(after) = keyword(masked, q, end, "where") {
            if q == 0 || !is_word(masked[q - 1]) {
                break;
            }
            q = after;
            continue;
        }
        q += 1;
    }
    let ty_start = for_at.map_or(p, |a| skip_ws(masked, a, end));
    let name = type_base_ident(&masked[ty_start..q.min(end)]);
    // Find the body.
    let mut r = q;
    while r < end && masked[r] != b'{' && masked[r] != b';' {
        r += 1;
    }
    if r >= end || masked[r] == b';' {
        return None;
    }
    let close = skip_balanced(masked, r, end);
    let inner = (r + 1, close.saturating_sub(1).max(r + 1));
    let children = if depth < MAX_DEPTH {
        parse_range(masked, inner.0, inner.1, depth + 1)
    } else {
        Vec::new()
    };
    Some((
        Item {
            kind: ItemKind::Impl,
            name,
            vis: Vis::Private,
            span: (start, close),
            body: Some(inner),
            params: String::new(),
            ret: String::new(),
            children,
        },
        close,
    ))
}

/// `trait Name … { methods }` (body parsed for default methods).
fn parse_named_body(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
    kind: ItemKind,
    depth: usize,
) -> Option<(Item, usize)> {
    let p = skip_ws(masked, after_kw, end);
    let (q, name) = read_ident(masked, p, end)?;
    let mut r = q;
    while r < end && masked[r] != b'{' && masked[r] != b';' {
        if masked[r] == b'<' {
            r = skip_generics(masked, r, end);
        } else {
            r += 1;
        }
    }
    if r >= end {
        return None;
    }
    if masked[r] == b';' {
        return Some((
            Item {
                kind,
                name,
                vis,
                span: (start, r + 1),
                body: None,
                params: String::new(),
                ret: String::new(),
                children: Vec::new(),
            },
            r + 1,
        ));
    }
    let close = skip_balanced(masked, r, end);
    let inner = (r + 1, close.saturating_sub(1).max(r + 1));
    let children = if depth < MAX_DEPTH {
        parse_range(masked, inner.0, inner.1, depth + 1)
    } else {
        Vec::new()
    };
    Some((
        Item {
            kind,
            name,
            vis,
            span: (start, close),
            body: Some(inner),
            params: String::new(),
            ret: String::new(),
            children,
        },
        close,
    ))
}

/// `struct S;` / `struct S(T);` / `struct S { … }` / `enum E { … }`.
fn parse_type_item(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
) -> Option<(Item, usize)> {
    let p = skip_ws(masked, after_kw, end);
    let (q, name) = read_ident(masked, p, end)?;
    let mut r = q;
    while r < end {
        match masked[r] {
            b'<' => r = skip_generics(masked, r, end),
            b'(' => r = skip_balanced(masked, r, end),
            b'{' => {
                let close = skip_balanced(masked, r, end);
                return Some((
                    Item {
                        kind: ItemKind::Type,
                        name,
                        vis,
                        span: (start, close),
                        body: Some((r + 1, close.saturating_sub(1).max(r + 1))),
                        params: String::new(),
                        ret: String::new(),
                        children: Vec::new(),
                    },
                    close,
                ));
            }
            b';' => {
                return Some((
                    Item {
                        kind: ItemKind::Type,
                        name,
                        vis,
                        span: (start, r + 1),
                        body: None,
                        params: String::new(),
                        ret: String::new(),
                        children: Vec::new(),
                    },
                    r + 1,
                ));
            }
            _ => r += 1,
        }
    }
    None
}

/// Items that run to a `;`, skipping balanced groups (a const
/// initializer may contain braces: `const X: T = Foo { a: 1 };`).
fn parse_terminated(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
    vis: Vis,
    kind: ItemKind,
) -> Option<(Item, usize)> {
    let p = skip_ws(masked, after_kw, end);
    let (mut q, name) = read_ident(masked, p, end)?;
    while q < end && masked[q] != b';' {
        match masked[q] {
            b'{' | b'(' | b'[' => q = skip_balanced(masked, q, end),
            b'<' => q = skip_generics(masked, q, end),
            _ => q += 1,
        }
    }
    let stop = (q + 1).min(end);
    Some((
        Item {
            kind,
            name,
            vis,
            span: (start, stop),
            body: None,
            params: String::new(),
            ret: String::new(),
            children: Vec::new(),
        },
        stop,
    ))
}

/// `macro_rules! name { … }` (or `( … );` / `[ … ];`).
fn parse_macro_rules(
    masked: &[u8],
    start: usize,
    after_kw: usize,
    end: usize,
) -> Option<(Item, usize)> {
    let mut p = skip_ws(masked, after_kw, end);
    if masked.get(p) != Some(&b'!') {
        return None;
    }
    p = skip_ws(masked, p + 1, end);
    let (q, name) = read_ident(masked, p, end)?;
    let r = skip_ws(masked, q, end);
    match masked.get(r) {
        Some(&b'{') => {
            let close = skip_balanced(masked, r, end);
            Some((
                Item {
                    kind: ItemKind::Other,
                    name,
                    vis: Vis::Private,
                    span: (start, close),
                    body: None,
                    params: String::new(),
                    ret: String::new(),
                    children: Vec::new(),
                },
                close,
            ))
        }
        Some(&b'(') | Some(&b'[') => {
            let mut s = skip_balanced(masked, r, end);
            if masked.get(s) == Some(&b';') {
                s += 1;
            }
            Some((
                Item {
                    kind: ItemKind::Other,
                    name,
                    vis: Vis::Private,
                    span: (start, s),
                    body: None,
                    params: String::new(),
                    ret: String::new(),
                    children: Vec::new(),
                },
                s,
            ))
        }
        _ => None,
    }
}

/// Collapses runs of whitespace to single spaces and trims.
fn normalize(bytes: &[u8]) -> String {
    let mut out = String::new();
    let mut ws = false;
    for &b in bytes {
        if b.is_ascii_whitespace() {
            ws = true;
        } else {
            if ws && !out.is_empty() {
                out.push(' ');
            }
            ws = false;
            out.push(b as char);
        }
    }
    out
}

/// Base identifier of a type header: `lexer::Token<'a>` → `Token`,
/// `&mut Foo` → `Foo`, `Vec<u8>` → `Vec`.
fn type_base_ident(bytes: &[u8]) -> String {
    // Strip to the path before any `<`, then take the last `::` segment.
    let head_end = bytes.iter().position(|&b| b == b'<').unwrap_or(bytes.len());
    let head = &bytes[..head_end];
    let mut cur_start: Option<usize> = None;
    let mut last: (usize, usize) = (0, 0);
    for (idx, &b) in head.iter().enumerate() {
        if is_word(b) {
            if cur_start.is_none() {
                cur_start = Some(idx);
            }
        } else if let Some(s) = cur_start.take() {
            last = (s, idx);
        }
    }
    if let Some(s) = cur_start {
        last = (s, head.len());
    }
    String::from_utf8_lossy(&head[last.0..last.1]).into_owned()
}

/// Depth-first walk over an item tree, yielding each item with its
/// enclosing module path (inline `mod` names only) and impl self type.
pub fn walk<'a>(items: &'a [Item], f: &mut impl FnMut(&'a Item, &[&'a str], Option<&'a str>)) {
    fn rec<'a>(
        items: &'a [Item],
        mods: &mut Vec<&'a str>,
        self_ty: Option<&'a str>,
        f: &mut impl FnMut(&'a Item, &[&'a str], Option<&'a str>),
    ) {
        for it in items {
            f(it, mods, self_ty);
            match it.kind {
                ItemKind::Mod => {
                    mods.push(&it.name);
                    rec(&it.children, mods, None, f);
                    mods.pop();
                }
                ItemKind::Impl => rec(&it.children, mods, Some(&it.name), f),
                ItemKind::Trait => rec(&it.children, mods, Some(&it.name), f),
                _ => {}
            }
        }
    }
    rec(items, &mut Vec::new(), None, f);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, mask};

    fn parse_src(src: &str) -> Vec<Item> {
        let tokens = lex(src);
        parse(&mask(src, &tokens))
    }

    fn names(items: &[Item]) -> Vec<(ItemKind, &str)> {
        items.iter().map(|i| (i.kind, i.name.as_str())).collect()
    }

    #[test]
    fn flat_items() {
        let items = parse_src(
            "pub fn a() {}\nfn b(x: u8) -> u8 { x }\npub struct S { f: u8 }\nenum E { A, B }\nconst N: usize = 3;\nuse std::fmt;\n",
        );
        assert_eq!(
            names(&items),
            vec![
                (ItemKind::Fn, "a"),
                (ItemKind::Fn, "b"),
                (ItemKind::Type, "S"),
                (ItemKind::Type, "E"),
                (ItemKind::Const, "N"),
                (ItemKind::Use, "std::fmt"),
            ]
        );
        assert_eq!(items[0].vis, Vis::Pub);
        assert_eq!(items[1].vis, Vis::Private);
        assert_eq!(items[1].params, "x: u8");
        assert!(items[1].ret.contains("-> u8"));
    }

    #[test]
    fn nested_mods_and_impls() {
        let src = "mod outer { pub mod inner { pub fn deep() {} } }\nimpl Foo { pub fn m(&self) {} }\nimpl fmt::Display for Bar<'_> { fn fmt(&self) {} }\n";
        let items = parse_src(src);
        assert_eq!(items[0].kind, ItemKind::Mod);
        assert_eq!(items[0].children[0].kind, ItemKind::Mod);
        assert_eq!(items[0].children[0].children[0].name, "deep");
        assert_eq!(items[1].kind, ItemKind::Impl);
        assert_eq!(items[1].name, "Foo");
        assert_eq!(items[1].children[0].name, "m");
        assert_eq!(items[2].name, "Bar");
        assert_eq!(items[2].children[0].name, "fmt");
    }

    #[test]
    fn generics_with_arrows_in_where_clause() {
        let src = "pub fn apply<F: Fn(usize) -> f64>(f: F) -> f64 where F: Fn(usize) -> f64 { f(0) }\nfn after() {}\n";
        let items = parse_src(src);
        assert_eq!(
            names(&items),
            vec![(ItemKind::Fn, "apply"), (ItemKind::Fn, "after")]
        );
        assert!(items[0].ret.contains("-> f64"));
    }

    #[test]
    fn const_fn_vs_const_item() {
        let items = parse_src("pub const fn cf() -> u8 { 1 }\npub const K: u8 = 2;\n");
        assert_eq!(
            names(&items),
            vec![(ItemKind::Fn, "cf"), (ItemKind::Const, "K")]
        );
    }

    #[test]
    fn const_with_struct_literal_initializer() {
        let items = parse_src("const X: P = P { a: 1, b: 2 };\nfn g() {}\n");
        assert_eq!(
            names(&items),
            vec![(ItemKind::Const, "X"), (ItemKind::Fn, "g")]
        );
    }

    #[test]
    fn use_groups_and_mod_decl() {
        let items = parse_src("pub use a::b::{C, d};\nmod stream;\npub mod task;\n");
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[0].name, "a::b::{C, d}");
        assert_eq!(items[1].kind, ItemKind::ModDecl);
        assert_eq!(items[2].vis, Vis::Pub);
    }

    #[test]
    fn trait_with_default_method() {
        let items = parse_src("pub trait T { fn req(&self); fn def(&self) { self.req() } }");
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(
            names(&items[0].children),
            vec![(ItemKind::Fn, "req"), (ItemKind::Fn, "def")]
        );
        assert!(items[0].children[0].body.is_none());
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn totality_on_garbage() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "mod {",
            "pub pub pub",
            "struct",
            "}} {{",
            "fn f(",
            "impl Foo for { }",
            "macro_rules! m",
        ] {
            let _ = parse_src(src); // must not panic or loop
        }
    }

    #[test]
    fn walk_reports_module_paths() {
        let src = "mod a { impl T { fn m() {} } }\nfn top() {}\n";
        let items = parse_src(src);
        let mut seen = Vec::new();
        walk(&items, &mut |it, mods, ty| {
            if it.kind == ItemKind::Fn {
                seen.push((it.name.clone(), mods.join("::"), ty.map(str::to_string)));
            }
        });
        assert_eq!(
            seen,
            vec![
                ("m".to_string(), "a".to_string(), Some("T".to_string())),
                ("top".to_string(), String::new(), None),
            ]
        );
    }
}
