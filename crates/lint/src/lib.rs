//! `alert-lint` — the workspace invariant checker.
//!
//! The repo's guarantees (bit-identical parallel≡serial drains, frozen
//! scenario randomness, capture→replay identity, panic-free library
//! code, CPU-clock decision metering) were enforced by hand-audits in
//! past PRs; this crate makes them machine-checked. It scans every
//! `.rs` file in the workspace with a hand-rolled lexer
//! ([`lexer`] — no `syn`, nothing vendored), classifies each file's
//! context ([`context`]), runs the rule catalog ([`rules`]), and emits
//! a machine-readable `LINT.json` plus a human table ([`report`]).
//!
//! The binary exits nonzero on any unsuppressed violation, so CI gates
//! on it; the in-repo self-test (`tests/workspace_clean.rs`) asserts
//! the workspace is lint-clean on every `cargo test` run.
//!
//! See DESIGN.md §9 for the lexical rule catalog, the
//! `// lint:allow(rule): reason` grammar, and how to add a rule;
//! DESIGN.md §10 covers the semantic layer ([`items`], [`graph`],
//! [`semantic`]) and its soundness caveats.

pub mod context;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod semantic;

use context::FileContext;
use report::Report;
use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &[".git", "target", "vendor", "results"];

/// Path suffixes excluded from scanning: the lint's own fixture corpus
/// contains deliberate violations.
const SKIP_SUFFIXES: &[&str] = &["crates/lint/tests/fixtures"];

/// Scan failure (I/O only — lexing and rule evaluation are total).
#[derive(Debug)]
pub struct LintError {
    /// The path being visited when the error occurred.
    pub path: PathBuf,
    /// The underlying I/O error.
    pub source: std::io::Error,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.path.display(), self.source)
    }
}

impl std::error::Error for LintError {}

/// One file loaded and lexically scanned — the unit both passes share.
struct LoadedFile {
    ctx: FileContext,
    src: String,
    masked: Vec<u8>,
    items: Vec<items::Item>,
    scan: rules::FileScan,
}

/// Scans the workspace rooted at `root` and returns the full report.
///
/// Two passes: a per-file lexical pass (lex, classify, lexical rules,
/// allow parsing), then the workspace-level semantic pass (item trees,
/// call graph, the four graph-powered rules). Semantic findings merge
/// into each file's raw findings *before* suppression resolution, so
/// `lint:allow(panic-reachability)` etc. behave exactly like lexical
/// allows.
pub fn lint_workspace(root: &Path) -> Result<Report, LintError> {
    let files = collect_rust_files(root)?;
    let files_scanned = files.len();
    let mut loaded: Vec<LoadedFile> = Vec::with_capacity(files_scanned);
    for (abs, rel) in files {
        let src = fs::read_to_string(&abs).map_err(|source| LintError {
            path: abs.clone(),
            source,
        })?;
        let tokens = lexer::lex(&src);
        let ctx = FileContext::build(&rel, &src, &tokens);
        let masked = lexer::mask(&src, &tokens);
        let items = items::parse(&masked);
        let scan = rules::scan_file(&ctx, &src, &tokens);
        loaded.push(LoadedFile {
            ctx,
            src,
            masked,
            items,
            scan,
        });
    }

    let mut sem = {
        let inputs: Vec<semantic::SemanticInput<'_>> = loaded
            .iter()
            .map(|l| semantic::SemanticInput {
                ctx: &l.ctx,
                src: &l.src,
                masked: &l.masked,
                items: &l.items,
                allows: l.scan.allow_view(),
            })
            .collect();
        semantic::analyze(&inputs)
    };

    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for (i, l) in loaded.into_iter().enumerate() {
        let mut scan = l.scan;
        if let Some(extra) = sem.violations.get_mut(i) {
            scan.raw.append(extra);
        }
        let findings = rules::resolve_scan(&l.ctx, scan, &l.src);
        violations.extend(findings.violations);
        allowed.extend(findings.allowed);
    }
    Ok(Report::new(files_scanned, violations, allowed, sem.graph))
}

/// All `.rs` files under `root` as (absolute, workspace-relative with
/// `/` separators), sorted by relative path so reports are
/// byte-deterministic across filesystems.
fn collect_rust_files(root: &Path) -> Result<Vec<(PathBuf, String)>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = fs::read_dir(&dir).map_err(|source| LintError {
            path: dir.clone(),
            source,
        })?;
        for entry in entries {
            let entry = entry.map_err(|source| LintError {
                path: dir.clone(),
                source,
            })?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let rel = rel_path(root, &path);
                if !SKIP_SUFFIXES.iter().any(|s| rel.starts_with(s)) {
                    out.push((path, rel));
                }
            }
        }
    }
    out.sort_by(|a, b| a.1.cmp(&b.1));
    Ok(out)
}

/// Workspace-relative path with `/` separators.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks up from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_paths_use_forward_slashes() {
        let root = Path::new("/w");
        let p = Path::new("/w/crates/core/src/alert.rs");
        assert_eq!(rel_path(root, p), "crates/core/src/alert.rs");
    }

    #[test]
    fn fixture_corpus_is_excluded() {
        assert!(SKIP_SUFFIXES
            .iter()
            .any(|s| "crates/lint/tests/fixtures/panics.rs".starts_with(s)));
    }
}
