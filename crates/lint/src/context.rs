//! File context: which crate a file belongs to, what kind of code it
//! is, and which byte ranges are test-only.
//!
//! Rules are context-aware (a wall-clock read is fine in a bench bin,
//! fatal in a decision path), so every scanned file gets a
//! [`FileContext`] built from its workspace-relative path plus the
//! lexed token tiling:
//!
//! * [`FileKind`] — library / bench / bin / example / integration test,
//!   derived purely from the path;
//! * test spans — byte ranges covered by `#[cfg(test)]` items or
//!   `mod tests { … }` blocks, found by scanning the *masked* source
//!   (so an attribute spelled inside a string does not open a span)
//!   and brace-matching in code-only bytes.

use crate::lexer::{lex, mask, Token};

/// Path-derived classification of one `.rs` file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` or the root `src/**` — library code, held
    /// to the strictest rules (no-panic applies here).
    Library,
    /// `crates/bench/**` — experiment drivers; may meter wall time and
    /// panic on malformed experiment setup.
    Bench,
    /// `src/bin/**` or `src/main.rs` of a non-bench crate — CLI entry
    /// points.
    Bin,
    /// `examples/**`.
    Example,
    /// `tests/**` — integration tests; the whole file is test code.
    IntegrationTest,
}

/// The context rules consult for one file.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate name (`alert-core`, …) or `"alert"` for the root crate.
    pub crate_name: String,
    /// Path-derived kind.
    pub kind: FileKind,
    /// Byte ranges that are test-only code.
    pub test_spans: Vec<(usize, usize)>,
}

impl FileContext {
    /// Builds the context for `rel_path` (workspace-relative, `/`
    /// separators) from the already-lexed `tokens` of `src`.
    pub fn build(rel_path: &str, src: &str, tokens: &[Token]) -> FileContext {
        let (crate_name, kind) = classify(rel_path);
        let test_spans = if kind == FileKind::IntegrationTest {
            vec![(0, src.len())]
        } else {
            find_test_spans(&mask(src, tokens))
        };
        FileContext {
            path: rel_path.to_string(),
            crate_name,
            kind,
            test_spans,
        }
    }

    /// Whether the byte offset lies in test-only code.
    pub fn in_test(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(s, e)| (s..e).contains(&offset))
    }
}

/// Classifies a workspace-relative path. Returns (crate name, kind).
fn classify(rel: &str) -> (String, FileKind) {
    let parts: Vec<&str> = rel.split('/').collect();
    match parts.as_slice() {
        ["crates", name, rest @ ..] => {
            let crate_name = format!("alert-{name}");
            let kind = if *name == "bench" {
                FileKind::Bench
            } else if rest.first() == Some(&"tests") {
                FileKind::IntegrationTest
            } else if rest.first() == Some(&"examples") {
                FileKind::Example
            } else if rest.get(1) == Some(&"bin") || rest == ["src", "main.rs"] {
                FileKind::Bin
            } else {
                FileKind::Library
            };
            (crate_name, kind)
        }
        ["tests", ..] => ("alert".to_string(), FileKind::IntegrationTest),
        ["examples", ..] => ("alert".to_string(), FileKind::Example),
        ["src", "bin", ..] | ["src", "main.rs"] => ("alert".to_string(), FileKind::Bin),
        _ => ("alert".to_string(), FileKind::Library),
    }
}

/// Scans masked source bytes for test-only spans: items annotated
/// `#[cfg(test)]` (attribute through the end of the item) and
/// `mod tests { … }` blocks.
fn find_test_spans(masked: &[u8]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0;
    while i < masked.len() {
        if let Some(after_attr) = match_cfg_test(masked, i) {
            let end = item_end(masked, after_attr);
            spans.push((i, end));
            i = end.max(i + 1);
        } else if let Some(body_start) = match_mod_tests(masked, i) {
            let end = item_end(masked, body_start);
            spans.push((i, end));
            i = end.max(i + 1);
        } else {
            i += 1;
        }
    }
    spans
}

/// Matches `#[cfg(test)]` (whitespace-tolerant) starting at `i`;
/// returns the offset just past `]`.
fn match_cfg_test(masked: &[u8], i: usize) -> Option<usize> {
    let mut p = Matcher { masked, at: i };
    p.byte(b'#')?;
    p.ws();
    p.byte(b'[')?;
    p.ws();
    p.word(b"cfg")?;
    p.ws();
    p.byte(b'(')?;
    p.ws();
    p.word(b"test")?;
    p.ws();
    p.byte(b')')?;
    p.ws();
    p.byte(b']')?;
    Some(p.at)
}

/// Matches `mod tests` followed by `{` starting at `i` (at a word
/// boundary); returns the offset of the `{`.
fn match_mod_tests(masked: &[u8], i: usize) -> Option<usize> {
    if i > 0 && is_word(masked[i - 1]) {
        return None;
    }
    let mut p = Matcher { masked, at: i };
    p.word(b"mod")?;
    p.ws_required()?;
    p.word(b"tests")?;
    p.ws();
    if p.peek() == Some(b'{') {
        Some(p.at)
    } else {
        None
    }
}

/// From `start` (just past an attribute, or at a `{`), finds the end of
/// the annotated item: skips further attributes, then runs to the `;`
/// of a braceless item or the matching `}` of the first brace block.
fn item_end(masked: &[u8], start: usize) -> usize {
    let mut i = start;
    // Skip any further attributes (`#[cfg(test)] #[derive(..)] struct S`).
    loop {
        while i < masked.len() && masked[i].is_ascii_whitespace() {
            i += 1;
        }
        if i < masked.len() && masked[i] == b'#' {
            // Skip the bracketed attribute body.
            while i < masked.len() && masked[i] != b'[' {
                i += 1;
            }
            let mut depth = 0usize;
            while i < masked.len() {
                match masked[i] {
                    b'[' => depth += 1,
                    b']' => {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                i += 1;
            }
        } else {
            break;
        }
    }
    // Run to the first `{` (item with a body) or `;` (braceless item
    // like `#[cfg(test)] use …;` / `mod tests;`).
    while i < masked.len() {
        match masked[i] {
            b'{' => return match_brace(masked, i),
            b';' => return i + 1,
            _ => i += 1,
        }
    }
    masked.len()
}

/// Offset just past the `}` matching the `{` at `open`.
fn match_brace(masked: &[u8], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < masked.len() {
        match masked[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    masked.len()
}

fn is_word(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

struct Matcher<'a> {
    masked: &'a [u8],
    at: usize,
}

impl Matcher<'_> {
    fn peek(&self) -> Option<u8> {
        self.masked.get(self.at).copied()
    }

    fn byte(&mut self, b: u8) -> Option<()> {
        if self.peek() == Some(b) {
            self.at += 1;
            Some(())
        } else {
            None
        }
    }

    fn word(&mut self, w: &[u8]) -> Option<()> {
        let end = self.at.checked_add(w.len())?;
        if self.masked.get(self.at..end)? == w && self.masked.get(end).is_none_or(|&b| !is_word(b))
        {
            self.at = end;
            Some(())
        } else {
            None
        }
    }

    fn ws(&mut self) {
        while self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.at += 1;
        }
    }

    fn ws_required(&mut self) -> Option<()> {
        if self.peek().is_some_and(|b| b.is_ascii_whitespace()) {
            self.ws();
            Some(())
        } else {
            None
        }
    }
}

/// Convenience used by tests: context straight from source.
pub fn context_for(rel_path: &str, src: &str) -> FileContext {
    let tokens = lex(src);
    FileContext::build(rel_path, src, &tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kinds() {
        let cases = [
            ("crates/core/src/alert.rs", "alert-core", FileKind::Library),
            (
                "crates/bench/src/bin/fig3.rs",
                "alert-bench",
                FileKind::Bench,
            ),
            ("crates/bench/src/lib.rs", "alert-bench", FileKind::Bench),
            ("crates/lint/src/main.rs", "alert-lint", FileKind::Bin),
            (
                "crates/core/tests/fast_lane.rs",
                "alert-core",
                FileKind::IntegrationTest,
            ),
            ("tests/end_to_end.rs", "alert", FileKind::IntegrationTest),
            ("examples/quickstart.rs", "alert", FileKind::Example),
            ("src/lib.rs", "alert", FileKind::Library),
        ];
        for (path, name, kind) in cases {
            let (n, k) = classify(path);
            assert_eq!((n.as_str(), k), (name, kind), "{path}");
        }
    }

    #[test]
    fn cfg_test_mod_span() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        let attr = src.find("#[cfg").unwrap();
        let unwrap_at = src.find("unwrap").unwrap();
        assert!(ctx.in_test(unwrap_at));
        assert!(ctx.in_test(attr));
        assert!(!ctx.in_test(0));
    }

    #[test]
    fn cfg_test_on_use_item_ends_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn live() { }\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        assert!(ctx.in_test(src.find("use").unwrap()));
        assert!(!ctx.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn cfg_test_with_stacked_attributes() {
        let src = "#[cfg(test)]\n#[derive(Debug)]\nstruct T { a: u8 }\nfn live() {}\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        assert!(ctx.in_test(src.find("struct").unwrap()));
        assert!(!ctx.in_test(src.find("live").unwrap()));
    }

    #[test]
    fn bare_mod_tests_block() {
        let src = "fn live() {}\nmod tests { fn t() {} }\nfn also_live() {}\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        assert!(ctx.in_test(src.find("fn t").unwrap()));
        assert!(!ctx.in_test(src.find("also_live").unwrap()));
    }

    #[test]
    fn attribute_inside_string_is_ignored() {
        let src = "let s = \"#[cfg(test)] mod tests {\"; fn live() { }\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        assert!(ctx.test_spans.is_empty(), "{:?}", ctx.test_spans);
    }

    #[test]
    fn integration_tests_are_all_test() {
        let ctx = context_for("tests/end_to_end.rs", "fn x() { y.unwrap(); }");
        assert!(ctx.in_test(10));
    }

    #[test]
    fn nested_braces_in_test_mod() {
        let src = "#[cfg(test)]\nmod tests {\n  fn a() { if x { y(); } }\n}\nfn live() {}\n";
        let ctx = context_for("crates/core/src/x.rs", src);
        assert!(!ctx.in_test(src.find("live").unwrap()));
    }
}
